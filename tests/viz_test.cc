#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "viz/layout.h"
#include "viz/render.h"

namespace cfnet::viz {
namespace {

TEST(LayoutTest, PositionsWithinFrame) {
  std::vector<std::pair<uint32_t, uint32_t>> edges = {{0, 1}, {1, 2}, {2, 0}};
  LayoutConfig config;
  config.width = 500;
  config.height = 400;
  auto pos = FruchtermanReingold(5, edges, config);
  ASSERT_EQ(pos.size(), 5u);
  for (const auto& p : pos) {
    EXPECT_GE(p.x, 0);
    EXPECT_LE(p.x, 500);
    EXPECT_GE(p.y, 0);
    EXPECT_LE(p.y, 400);
  }
}

TEST(LayoutTest, DeterministicPerSeed) {
  std::vector<std::pair<uint32_t, uint32_t>> edges = {{0, 1}, {1, 2}};
  auto a = FruchtermanReingold(4, edges);
  auto b = FruchtermanReingold(4, edges);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

TEST(LayoutTest, ConnectedNodesEndUpCloserThanDisconnected) {
  // Two tight pairs, no cross edges.
  std::vector<std::pair<uint32_t, uint32_t>> edges = {{0, 1}, {2, 3}};
  LayoutConfig config;
  config.iterations = 300;
  auto pos = FruchtermanReingold(4, edges, config);
  auto dist = [&](int i, int j) {
    double dx = pos[static_cast<size_t>(i)].x - pos[static_cast<size_t>(j)].x;
    double dy = pos[static_cast<size_t>(i)].y - pos[static_cast<size_t>(j)].y;
    return std::sqrt(dx * dx + dy * dy);
  };
  EXPECT_LT(dist(0, 1), dist(0, 2));
  EXPECT_LT(dist(2, 3), dist(1, 3));
}

TEST(LayoutTest, EmptyAndSingle) {
  EXPECT_TRUE(FruchtermanReingold(0, {}).empty());
  auto one = FruchtermanReingold(1, {});
  EXPECT_EQ(one.size(), 1u);
}

TEST(RenderTest, SvgContainsNodesEdgesAndTitle) {
  std::vector<NodeSpec> nodes = {{"investor 1", "#4477cc", 6},
                                 {"company 2", "#cc4444", 4}};
  std::vector<Point2D> pos = {{10, 20}, {30, 40}};
  std::string svg =
      RenderSvg(nodes, pos, {{0, 1}}, 100, 100, "Strong community");
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("Strong community"), std::string::npos);
  EXPECT_NE(svg.find("#4477cc"), std::string::npos);
  EXPECT_NE(svg.find("#cc4444"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("investor 1"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(RenderTest, DotContainsNodesAndEdges) {
  std::vector<NodeSpec> nodes = {{"a", "#111111", 5}, {"b", "#222222", 5}};
  std::string dot = RenderDot(nodes, {{0, 1}}, "mygraph");
  EXPECT_NE(dot.find("graph mygraph {"), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1;"), std::string::npos);
}

TEST(RenderTest, WriteTextFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/cfnet_viz_test.svg";
  ASSERT_TRUE(WriteTextFile(path, "hello").ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "hello");
  std::remove(path.c_str());
  EXPECT_FALSE(WriteTextFile("/no/such/dir/x.svg", "y").ok());
}

}  // namespace
}  // namespace cfnet::viz
