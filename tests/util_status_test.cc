#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace cfnet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing file");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing file");
  EXPECT_EQ(s.ToString(), "NotFound: missing file");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

Status FailsThrough(bool fail) {
  CFNET_RETURN_IF_ERROR(fail ? Status::Aborted("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThrough(false).ok());
  Status s = FailsThrough(true);
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(s.message(), "inner");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello world");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello world");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  CFNET_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseAssignOrReturn(3, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(out, 5);  // unchanged on error
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace cfnet
