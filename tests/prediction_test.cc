#include "core/prediction.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cfnet::core {
namespace {

/// Synthetic linearly-separable-ish task: label depends on features 0 and 2;
/// features 1 and 3..9 are noise.
std::vector<LabeledExample> SyntheticExamples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<LabeledExample> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    LabeledExample ex;
    ex.company_id = i + 1;
    ex.features.resize(SuccessFeatureNames().size());
    for (double& f : ex.features) f = rng.Normal(0, 1);
    double z = 2.0 * ex.features[0] - 1.5 * ex.features[2] - 1.0;
    double p = 1.0 / (1.0 + std::exp(-z));
    ex.success = rng.Bernoulli(p);
    out.push_back(std::move(ex));
  }
  return out;
}

TEST(AucTest, PerfectAndWorstAndRandom) {
  EXPECT_DOUBLE_EQ(
      ComputeAuc({{0.9, true}, {0.8, true}, {0.2, false}, {0.1, false}}), 1.0);
  EXPECT_DOUBLE_EQ(
      ComputeAuc({{0.9, false}, {0.8, false}, {0.2, true}, {0.1, true}}), 0.0);
  // All scores tied: AUC 0.5 by midrank convention.
  EXPECT_DOUBLE_EQ(ComputeAuc({{0.5, true}, {0.5, false}, {0.5, true}}), 0.5);
  // Degenerate single-class input.
  EXPECT_DOUBLE_EQ(ComputeAuc({{0.9, true}, {0.1, true}}), 0.5);
}

TEST(AucTest, PartialOrdering) {
  // One inversion among 2x2: AUC = 3/4.
  EXPECT_DOUBLE_EQ(
      ComputeAuc({{0.9, true}, {0.7, false}, {0.6, true}, {0.1, false}}),
      0.75);
}

TEST(TrainTest, LearnsSeparableSignal) {
  auto examples = SyntheticExamples(4000, 11);
  TrainConfig config;
  config.balance_classes = false;  // classes are roughly balanced here
  PredictionResult model = TrainSuccessPredictor(examples, config);
  EXPECT_GT(model.test_auc, 0.85);
  // Informative weights dominate and carry the right signs.
  EXPECT_GT(model.weights[0], 0.5);
  EXPECT_LT(model.weights[2], -0.4);
  for (size_t k : {1u, 3u, 4u, 5u}) {
    EXPECT_LT(std::fabs(model.weights[k]), std::fabs(model.weights[0]) / 3)
        << "noise feature " << k;
  }
  EXPECT_EQ(model.train_size + model.test_size, examples.size());
}

TEST(TrainTest, L1PrunesNoiseFeatures) {
  auto examples = SyntheticExamples(4000, 13);
  TrainConfig config;
  config.balance_classes = false;
  config.l1 = 0.01;
  PredictionResult model = TrainSuccessPredictor(examples, config);
  EXPECT_LT(model.nonzero_weights, SuccessFeatureNames().size());
  // The informative features survive selection.
  EXPECT_GT(std::fabs(model.weights[0]), 1e-6);
  EXPECT_GT(std::fabs(model.weights[2]), 1e-6);
  EXPECT_GT(model.test_auc, 0.85);
}

TEST(TrainTest, DeterministicPerSeed) {
  auto examples = SyntheticExamples(1000, 17);
  PredictionResult a = TrainSuccessPredictor(examples);
  PredictionResult b = TrainSuccessPredictor(examples);
  EXPECT_EQ(a.test_auc, b.test_auc);
  EXPECT_EQ(a.weights, b.weights);
}

TEST(TrainTest, ImbalancedClassesStillRank) {
  // ~2% positives, like the funding rate.
  Rng rng(19);
  std::vector<LabeledExample> examples;
  for (size_t i = 0; i < 6000; ++i) {
    LabeledExample ex;
    ex.company_id = i;
    ex.features.resize(SuccessFeatureNames().size());
    for (double& f : ex.features) f = rng.Normal(0, 1);
    double z = 2.5 * ex.features[1] - 4.2;
    ex.success = rng.Bernoulli(1.0 / (1.0 + std::exp(-z)));
    examples.push_back(std::move(ex));
  }
  PredictionResult model = TrainSuccessPredictor(examples);
  EXPECT_GT(model.test_auc, 0.8);
  EXPECT_GT(model.top_decile_lift, 2.0);
}

TEST(TrainTest, PredictAppliesStandardization) {
  auto examples = SyntheticExamples(2000, 23);
  TrainConfig config;
  config.balance_classes = false;
  PredictionResult model = TrainSuccessPredictor(examples, config);
  std::vector<double> strong_pos(SuccessFeatureNames().size(), 0.0);
  strong_pos[0] = 3.0;
  strong_pos[2] = -3.0;
  std::vector<double> strong_neg(SuccessFeatureNames().size(), 0.0);
  strong_neg[0] = -3.0;
  strong_neg[2] = 3.0;
  EXPECT_GT(model.Predict(strong_pos), 0.8);
  EXPECT_LT(model.Predict(strong_neg), 0.2);
}

TEST(TrainTest, EmptyInput) {
  PredictionResult model = TrainSuccessPredictor({});
  EXPECT_EQ(model.train_size, 0u);
  EXPECT_DOUBLE_EQ(model.test_auc, 0.0);
}

}  // namespace
}  // namespace cfnet::core
