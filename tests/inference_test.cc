#include "stats/inference.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cfnet::stats {
namespace {

TEST(PearsonTest, PerfectAndInverse) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, IndependentNearZero) {
  Rng rng(3);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.Normal(0, 1));
    y.push_back(rng.Normal(0, 1));
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.03);
}

TEST(PearsonTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({}, {}), 0.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y;
  for (double v : x) y.push_back(std::exp(v));  // nonlinear but monotone
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 0.95);  // Pearson penalizes curvature
}

TEST(SpearmanTest, HandlesTies) {
  std::vector<double> x = {1, 1, 2, 2, 3, 3};
  std::vector<double> y = {1, 1, 2, 2, 3, 3};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(ChiSquareTest, StrongAssociation) {
  // Social presence vs success at paper-like rates:
  // social: 500/5000 funded; none: 40/10000.
  ChiSquareResult r = ChiSquare2x2(500, 4500, 40, 9960);
  EXPECT_GT(r.statistic, 100);
  EXPECT_LT(r.p_value, 1e-10);
  EXPECT_GT(r.odds_ratio, 20);
}

TEST(ChiSquareTest, NoAssociation) {
  ChiSquareResult r = ChiSquare2x2(100, 900, 101, 899);
  EXPECT_LT(r.statistic, 0.2);
  EXPECT_GT(r.p_value, 0.5);
  EXPECT_NEAR(r.odds_ratio, 1.0, 0.1);
}

TEST(ChiSquareTest, KnownPValues) {
  // chi2 df=1 critical values: P(X > 3.841) = 0.05, P(X > 6.635) = 0.01.
  EXPECT_NEAR(ChiSquarePValueDf1(3.841), 0.05, 0.001);
  EXPECT_NEAR(ChiSquarePValueDf1(6.635), 0.01, 0.0005);
  EXPECT_DOUBLE_EQ(ChiSquarePValueDf1(0), 1.0);
}

TEST(ChiSquareTest, DegenerateMargins) {
  ChiSquareResult r = ChiSquare2x2(0, 0, 5, 5);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(BootstrapTest, CoversTrueMean) {
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.Normal(10, 2));
  BootstrapInterval ci = BootstrapMeanCi(samples, 0.95, 2000, 5);
  EXPECT_NEAR(ci.mean, 10, 0.3);
  EXPECT_LT(ci.lo, ci.mean);
  EXPECT_GT(ci.hi, ci.mean);
  EXPECT_LE(ci.lo, 10.0 + 0.3);
  EXPECT_GE(ci.hi, 10.0 - 0.3);
  // Width ~ 2 * 1.96 * sigma/sqrt(n) = 0.35.
  EXPECT_NEAR(ci.hi - ci.lo, 0.35, 0.12);
}

TEST(BootstrapTest, Degenerate) {
  BootstrapInterval empty = BootstrapMeanCi({});
  EXPECT_DOUBLE_EQ(empty.mean, 0);
  BootstrapInterval single = BootstrapMeanCi({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.lo, 5.0);
  EXPECT_DOUBLE_EQ(single.hi, 5.0);
}

TEST(BootstrapTest, DeterministicPerSeed) {
  std::vector<double> samples = {1, 2, 3, 4, 5, 6, 7, 8};
  BootstrapInterval a = BootstrapMeanCi(samples, 0.9, 500, 9);
  BootstrapInterval b = BootstrapMeanCi(samples, 0.9, 500, 9);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace cfnet::stats
