#include "core/records.h"

#include <gtest/gtest.h>

namespace cfnet::core {
namespace {

json::Json ParseOrDie(const char* text) {
  auto parsed = json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return std::move(parsed).value();
}

// --- StartupRecord -----------------------------------------------------------

TEST(StartupRecordTest, FullProfile) {
  StartupRecord r = StartupRecord::FromJson(ParseOrDie(R"({
    "id": 42, "name": "NovaPay 42",
    "twitter_url": "https://twitter.com/startup42",
    "facebook_url": "https://www.facebook.com/fbpage42",
    "crunchbase_url": "https://www.crunchbase.com/organization/company-42",
    "video_url": "https://video.example.com/demo/42",
    "fundraising": true, "follower_count": 77
  })"));
  EXPECT_EQ(r.id, 42u);
  EXPECT_EQ(r.name, "NovaPay 42");
  EXPECT_TRUE(r.has_twitter_url);
  EXPECT_TRUE(r.has_facebook_url);
  EXPECT_TRUE(r.has_crunchbase_url);
  EXPECT_TRUE(r.has_video);
  EXPECT_TRUE(r.fundraising);
  EXPECT_EQ(r.follower_count, 77);
}

TEST(StartupRecordTest, MissingOptionalFieldsDefaultCleanly) {
  StartupRecord r =
      StartupRecord::FromJson(ParseOrDie(R"({"id": 7, "name": "X"})"));
  EXPECT_EQ(r.id, 7u);
  EXPECT_FALSE(r.has_twitter_url);
  EXPECT_FALSE(r.has_facebook_url);
  EXPECT_FALSE(r.has_crunchbase_url);
  EXPECT_FALSE(r.has_video);
  EXPECT_FALSE(r.fundraising);
  EXPECT_EQ(r.follower_count, 0);
}

TEST(StartupRecordTest, EmptyUrlStringsCountAsAbsent) {
  StartupRecord r = StartupRecord::FromJson(
      ParseOrDie(R"({"id": 1, "twitter_url": "", "video_url": ""})"));
  EXPECT_FALSE(r.has_twitter_url);
  EXPECT_FALSE(r.has_video);
}

// --- UserRecord ----------------------------------------------------------------

TEST(UserRecordTest, RolesAndInvestments) {
  UserRecord r = UserRecord::FromJson(ParseOrDie(R"({
    "id": 9, "roles": ["investor", "founder"],
    "investment_company_ids": [3, 1, 4],
    "following_startup_count": 250, "following_user_count": 12
  })"));
  EXPECT_EQ(r.id, 9u);
  EXPECT_TRUE(r.is_investor);
  EXPECT_TRUE(r.is_founder);
  EXPECT_FALSE(r.is_employee);
  EXPECT_EQ(r.investment_company_ids, (std::vector<uint64_t>{3, 1, 4}));
  EXPECT_EQ(r.following_startup_count, 250);
  EXPECT_EQ(r.following_user_count, 12);
}

TEST(UserRecordTest, UnknownRolesIgnored) {
  UserRecord r = UserRecord::FromJson(
      ParseOrDie(R"({"id": 2, "roles": ["other", "advisor"]})"));
  EXPECT_FALSE(r.is_investor);
  EXPECT_FALSE(r.is_founder);
  EXPECT_FALSE(r.is_employee);
  EXPECT_TRUE(r.investment_company_ids.empty());
}

// --- CrunchBaseRecord -------------------------------------------------------------

TEST(CrunchBaseRecordTest, FlattensRoundInvestors) {
  CrunchBaseRecord r = CrunchBaseRecord::FromJson(ParseOrDie(R"({
    "angellist_id": 11, "total_funding_usd": 2500000.5,
    "funding_rounds": [
      {"round_index": 0, "amount_usd": 1e6, "investor_ids": [100, 101]},
      {"round_index": 1, "amount_usd": 1.5e6, "investor_ids": [101, 102]}
    ]
  })"));
  EXPECT_EQ(r.angellist_id, 11u);
  EXPECT_DOUBLE_EQ(r.total_funding_usd, 2500000.5);
  EXPECT_EQ(r.num_rounds, 2);
  EXPECT_EQ(r.round_investor_ids, (std::vector<uint64_t>{100, 101, 101, 102}));
  EXPECT_TRUE(r.funded());
}

TEST(CrunchBaseRecordTest, UnfundedWhenEmpty) {
  CrunchBaseRecord r =
      CrunchBaseRecord::FromJson(ParseOrDie(R"({"angellist_id": 3})"));
  EXPECT_FALSE(r.funded());
  EXPECT_EQ(r.num_rounds, 0);
  // Rounds without recorded investors still count as funding evidence.
  CrunchBaseRecord with_round = CrunchBaseRecord::FromJson(ParseOrDie(
      R"({"angellist_id": 3, "funding_rounds": [{"round_index": 0}]})"));
  EXPECT_TRUE(with_round.funded());
  EXPECT_TRUE(with_round.round_investor_ids.empty());
}

// --- FacebookRecord / TwitterRecord ---------------------------------------------

TEST(FacebookRecordTest, Fields) {
  FacebookRecord r = FacebookRecord::FromJson(
      ParseOrDie(R"({"angellist_id": 5, "fan_count": 652})"));
  EXPECT_EQ(r.angellist_id, 5u);
  EXPECT_EQ(r.fan_count, 652);
}

TEST(TwitterRecordTest, NullFollowerCountFlagged) {
  TwitterRecord null_followers = TwitterRecord::FromJson(ParseOrDie(
      R"({"angellist_id": 6, "statuses_count": 343, "followers_count": null})"));
  EXPECT_TRUE(null_followers.followers_count_null);
  EXPECT_EQ(null_followers.followers_count, 0);
  EXPECT_EQ(null_followers.statuses_count, 343);

  TwitterRecord with_followers = TwitterRecord::FromJson(ParseOrDie(
      R"({"angellist_id": 6, "statuses_count": 10, "followers_count": 339})"));
  EXPECT_FALSE(with_followers.followers_count_null);
  EXPECT_EQ(with_followers.followers_count, 339);
}

TEST(TwitterRecordTest, MissingFollowerFieldIsNullToo) {
  // A profile without the field at all behaves like a null count (the
  // table's "follower count is not null" row distinguishes them from 0).
  TwitterRecord r = TwitterRecord::FromJson(
      ParseOrDie(R"({"angellist_id": 8, "statuses_count": 1})"));
  EXPECT_TRUE(r.followers_count_null);
}

}  // namespace
}  // namespace cfnet::core
