#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/rate_limiter.h"
#include "util/circuit_breaker.h"

namespace cfnet {
namespace {

using net::SlidingWindowRateLimiter;
using util::CircuitBreaker;
using util::CircuitBreakerConfig;

// ---------------------------------------------------------------------------
// Sliding-window edges. The window contract: a call admitted at time t stops
// counting against the budget exactly at t + window — not one microsecond
// earlier.

TEST(RateLimiterTest, WindowRollsOverExactlyAtBoundary) {
  SlidingWindowRateLimiter limiter(/*max_calls=*/3, /*window_micros=*/100);
  EXPECT_TRUE(limiter.Admit("tok", 0).admitted);
  EXPECT_TRUE(limiter.Admit("tok", 10).admitted);
  EXPECT_TRUE(limiter.Admit("tok", 20).admitted);

  // Budget exhausted: the rejection points at when the oldest call expires.
  SlidingWindowRateLimiter::Decision rejected = limiter.Admit("tok", 50);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.retry_at_micros, 100);

  // One tick before the boundary the oldest call still occupies its slot.
  EXPECT_FALSE(limiter.Admit("tok", 99).admitted);
  // Exactly at the boundary it has rolled out of the window.
  EXPECT_TRUE(limiter.Admit("tok", 100).admitted);
  // The two remaining in-window calls (t=10, t=20) plus the new one still
  // saturate the budget until t=110.
  SlidingWindowRateLimiter::Decision again = limiter.Admit("tok", 105);
  EXPECT_FALSE(again.admitted);
  EXPECT_EQ(again.retry_at_micros, 110);
}

TEST(RateLimiterTest, OutOfOrderTimestampsKeepWindowCorrect) {
  SlidingWindowRateLimiter limiter(/*max_calls=*/2, /*window_micros=*/100);
  // Workers with skewed virtual clocks admit out of order.
  EXPECT_TRUE(limiter.Admit("tok", 50).admitted);
  EXPECT_TRUE(limiter.Admit("tok", 40).admitted);
  SlidingWindowRateLimiter::Decision d = limiter.Admit("tok", 60);
  EXPECT_FALSE(d.admitted);
  // The oldest admitted call is t=40 even though it arrived second.
  EXPECT_EQ(d.retry_at_micros, 140);
  EXPECT_TRUE(limiter.Admit("tok", 140).admitted);
}

TEST(RateLimiterTest, TokensAreIndependentShards) {
  SlidingWindowRateLimiter limiter(/*max_calls=*/1, /*window_micros=*/100);
  EXPECT_TRUE(limiter.Admit("a", 0).admitted);
  EXPECT_FALSE(limiter.Admit("a", 10).admitted);
  // Token "b" has its own window — rotation defeats per-token exhaustion.
  EXPECT_TRUE(limiter.Admit("b", 10).admitted);
  EXPECT_EQ(limiter.AdmittedCount("a"), 1);
  EXPECT_EQ(limiter.AdmittedCount("b"), 1);
  EXPECT_EQ(limiter.AdmittedCount("c"), 0);
}

TEST(RateLimiterTest, ConcurrentWorkersNeverExceedBudget) {
  constexpr int kBudget = 16;
  SlidingWindowRateLimiter limiter(kBudget, /*window_micros=*/1'000'000);
  std::atomic<int> admitted{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        if (limiter.Admit("shared", t * 100 + i).admitted) {
          admitted.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(admitted.load(), kBudget);
  EXPECT_EQ(limiter.AdmittedCount("shared"), kBudget);
}

// ---------------------------------------------------------------------------
// Circuit breaker: half-open probe admission under contention.

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresOnly) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.cooldown_micros = 1000;
  CircuitBreaker breaker(config);
  breaker.RecordFailure(0);
  breaker.RecordFailure(1);
  breaker.RecordSuccess();  // resets the consecutive count
  breaker.RecordFailure(2);
  breaker.RecordFailure(3);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(4);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_FALSE(breaker.AllowRequest(5));
  EXPECT_EQ(breaker.open_until_micros(), 4 + 1000);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyConfiguredProbesUnderContention) {
  for (int round = 0; round < 20; ++round) {
    CircuitBreakerConfig config;
    config.failure_threshold = 1;
    config.cooldown_micros = 100;
    config.half_open_probes = 2;
    CircuitBreaker breaker(config);
    breaker.RecordFailure(0);
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

    // 16 workers race past the cooldown at once; the half-open gate must
    // admit exactly `half_open_probes` of them, atomically with the
    // open -> half-open transition.
    constexpr int kWorkers = 16;
    std::atomic<int> admitted{0};
    std::atomic<bool> start{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < kWorkers; ++t) {
      workers.emplace_back([&] {
        while (!start.load()) std::this_thread::yield();
        if (breaker.AllowRequest(200)) admitted.fetch_add(1);
      });
    }
    start.store(true);
    for (auto& w : workers) w.join();
    EXPECT_EQ(admitted.load(), 2);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

    // Both probes succeeding closes the breaker; admission is unlimited
    // again.
    breaker.RecordSuccess();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    breaker.RecordSuccess();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    EXPECT_TRUE(breaker.AllowRequest(201));
  }
}

TEST(CircuitBreakerTest, FailedProbeReopensForAnotherCooldown) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_micros = 100;
  config.half_open_probes = 1;
  CircuitBreaker breaker(config);
  breaker.RecordFailure(0);
  EXPECT_TRUE(breaker.AllowRequest(150));  // the probe
  breaker.RecordFailure(150);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_FALSE(breaker.AllowRequest(200));
  EXPECT_TRUE(breaker.AllowRequest(250));  // next cooldown elapsed
}

}  // namespace
}  // namespace cfnet
