#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace cfnet {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextUint64InRange) {
  Rng rng(7);
  for (uint64_t n : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(n), n);
    }
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0;
  double ss = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(5.0, 2.0);
    sum += x;
    ss += x * x;
  }
  double mean = sum / n;
  double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(19);
  std::vector<double> xs;
  const int n = 30001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.LogNormal(std::log(652), 1.5));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 652, 652 * 0.08);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GeometricMean) {
  Rng rng(29);
  double sum = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    int64_t g = rng.Geometric(0.25);
    EXPECT_GE(g, 0);
    sum += static_cast<double>(g);
  }
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.12);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(31);
  for (double mean : {0.5, 4.0, 120.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, RespectsSupportAndMonotoneMass) {
  const double s = GetParam();
  Rng rng(37);
  const int64_t n = 50;
  std::vector<int64_t> counts(n + 1, 0);
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    int64_t k = rng.Zipf(n, s);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, n);
    ++counts[static_cast<size_t>(k)];
  }
  // P(1) should dominate P(10) which dominates P(50) for s > 0.3.
  if (s >= 0.5) {
    EXPECT_GT(counts[1], counts[10]);
    EXPECT_GT(counts[10], counts[50]);
  }
  // Empirical ratio P(1)/P(2) should be near 2^s.
  if (counts[2] > 500) {
    double ratio = static_cast<double>(counts[1]) / counts[2];
    EXPECT_NEAR(ratio, std::pow(2.0, s), std::pow(2.0, s) * 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.5, 2.0));

TEST(RngTest, ZipfSingleElement) {
  Rng rng(41);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Zipf(1, 1.2), 1);
}

TEST(RngTest, PowerLawBoundsAndTail) {
  Rng rng(43);
  const int n = 40000;
  int64_t max_seen = 0;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    int64_t v = rng.PowerLaw(3, 1000, 2.45);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 1000);
    max_seen = std::max(max_seen, v);
    sum += static_cast<double>(v);
  }
  EXPECT_GT(max_seen, 100);  // heavy tail reaches far
  // Continuous-approximation mean for alpha=2.45 on [3,1000] is ~8.9.
  EXPECT_NEAR(sum / n, 8.9, 1.2);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(47);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(59);
  for (size_t n : {size_t{10}, size_t{100}, size_t{10000}}) {
    for (size_t k : {size_t{0}, size_t{1}, size_t{5}, n / 2, n}) {
      auto sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<size_t> distinct(sample.begin(), sample.end());
      EXPECT_EQ(distinct.size(), k);
      for (size_t x : sample) EXPECT_LT(x, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementUniformish) {
  Rng rng(61);
  std::vector<int> hits(20, 0);
  for (int trial = 0; trial < 8000; ++trial) {
    for (size_t x : rng.SampleWithoutReplacement(20, 5)) ++hits[x];
  }
  // Every index should be hit ~2000 times.
  for (int h : hits) EXPECT_NEAR(h, 2000, 250);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(67);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace cfnet
