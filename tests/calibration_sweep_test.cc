// Parameterized sweep over world seeds and scales: the calibration
// invariants that define the reproduction must hold for every
// configuration, not just the default one.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/engagement_analysis.h"
#include "core/experiments.h"
#include "core/platform.h"

namespace cfnet::core {
namespace {

using SweepParam = std::tuple<double /*scale*/, uint64_t /*seed*/>;

class CalibrationSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    auto [scale, seed] = GetParam();
    ExploratoryPlatform::Options options;
    options.world.scale = scale;
    options.world.seed = seed;
    options.crawl.num_workers = 4;
    platform_ = std::make_unique<ExploratoryPlatform>(options);
    ASSERT_TRUE(platform_->CollectData().ok());
    auto inputs = platform_->LoadInputs();
    ASSERT_TRUE(inputs.ok());
    inputs_ = std::make_unique<AnalysisInputs>(std::move(inputs).value());
  }

  std::unique_ptr<ExploratoryPlatform> platform_;
  std::unique_ptr<AnalysisInputs> inputs_;
};

TEST_P(CalibrationSweep, CrawlCoverageIsEssentiallyComplete) {
  const auto& world = platform_->world();
  const auto& report = platform_->crawl_report();
  EXPECT_GE(report.companies_crawled,
            static_cast<int64_t>(world.companies().size() * 95 / 100));
  EXPECT_GE(report.users_crawled,
            static_cast<int64_t>(world.users().size() * 95 / 100));
}

TEST_P(CalibrationSweep, SocialPresenceSharesNearPaper) {
  EngagementTable table = AnalyzeEngagement(platform_->context(), *inputs_);
  const auto* none = table.FindRow("No social media presence");
  const auto* fb = table.FindRow("Facebook");
  const auto* tw = table.FindRow("Twitter");
  ASSERT_NE(none, nullptr);
  // Paper shares: none 89.81%, FB 5.07%, TW 9.48%. Allow sampling noise
  // at small scales.
  EXPECT_NEAR(none->pct_of_companies, 89.81, 1.5);
  EXPECT_NEAR(fb->pct_of_companies, 5.07, 1.2);
  EXPECT_NEAR(tw->pct_of_companies, 9.48, 1.5);
}

TEST_P(CalibrationSweep, SocialSuccessOrderingHolds) {
  EngagementTable table = AnalyzeEngagement(platform_->context(), *inputs_);
  const auto* none = table.FindRow("No social media presence");
  const auto* fb = table.FindRow("Facebook");
  const auto* tw = table.FindRow("Twitter");
  const auto* both = table.FindRow("Facebook and Twitter");
  const auto* fb_hi = table.FindRow("Facebook (likes > median)");
  // The paper's qualitative structure: social >> none; engagement > mere
  // presence; both >= each alone (within noise).
  EXPECT_GT(fb->success_pct, 8 * none->success_pct);
  EXPECT_GT(tw->success_pct, 8 * none->success_pct);
  EXPECT_GT(both->success_pct, 0.8 * fb->success_pct);
  EXPECT_GT(fb_hi->success_pct, fb->success_pct);
  // Significance of the presence split survives at every sweep point.
  EXPECT_LT(fb->chi_square_p_value, 1e-6);
}

TEST_P(CalibrationSweep, InvestorGraphShapeHolds) {
  ExperimentSuite suite(platform_->context(), *inputs_);
  Fig3Result fig3 = suite.RunFig3();
  // The paper's median is 1; at sweep scales the investor sample is small
  // (a few hundred), so allow the median to wobble to 2 while the mass at
  // degree 1 stays dominant.
  EXPECT_LE(fig3.degrees.median, 2.0);
  double f1 = 0;
  for (const auto& point : fig3.investment_cdf) {
    if (point.x == 1.0) f1 = point.p;
  }
  EXPECT_GT(f1, 0.40);  // ~half of investors make exactly one investment
  EXPECT_GT(fig3.degrees.mean, 2.3);
  EXPECT_LT(fig3.degrees.mean, 4.5);
  // Concentration: the >=3 cohort holds a disproportionate edge share.
  const auto& c3 = fig3.degrees.concentration[0];
  EXPECT_NEAR(c3.node_fraction, 0.30, 0.08);
  EXPECT_NEAR(c3.edge_fraction, 0.75, 0.08);
  // The merge is complete: every AngelList-visible edge is in the graph.
  EXPECT_GE(fig3.provenance.merged_unique_edges,
            fig3.provenance.angellist_edges);
  EXPECT_GE(fig3.provenance.merged_unique_edges,
            fig3.provenance.crunchbase_edges);
}

INSTANTIATE_TEST_SUITE_P(
    ScalesAndSeeds, CalibrationSweep,
    ::testing::Values(SweepParam{0.004, 1}, SweepParam{0.004, 20160626},
                      SweepParam{0.008, 7}, SweepParam{0.012, 99}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      // (std::get instead of structured bindings: the macro would split on
      // the binding list's comma.)
      return "scale" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 1000)) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace cfnet::core
