#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "community/coda.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/random_baseline.h"
#include "community/sbm.h"
#include "graph/bipartite_graph.h"
#include "graph/weighted_graph.h"
#include "util/rng.h"

namespace cfnet::community {
namespace {

/// Planted bipartite world: `blocks` disjoint groups of investors, each
/// investing densely inside its own pool of companies, plus light noise.
graph::BipartiteGraph PlantedBipartite(int blocks, int investors_per_block,
                                       int companies_per_block,
                                       double in_density, double noise,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  const uint64_t total_companies =
      static_cast<uint64_t>(blocks * companies_per_block);
  for (int b = 0; b < blocks; ++b) {
    for (int i = 0; i < investors_per_block; ++i) {
      uint64_t inv = static_cast<uint64_t>(b * investors_per_block + i + 1);
      for (int c = 0; c < companies_per_block; ++c) {
        uint64_t comp =
            1000 + static_cast<uint64_t>(b * companies_per_block + c);
        if (rng.Bernoulli(in_density)) edges.emplace_back(inv, comp);
      }
      // Noise edges to arbitrary companies.
      for (uint64_t n = 0; n < 2; ++n) {
        if (rng.Bernoulli(noise)) {
          edges.emplace_back(inv, 1000 + rng.NextUint64(total_companies));
        }
      }
    }
  }
  return graph::BipartiteGraph::FromEdges(edges);
}

/// Fraction of planted co-members that the detected assignment also puts
/// together (pairwise recall over sampled pairs).
double PairwiseRecall(const CommunitySet& detected, int blocks,
                      int investors_per_block,
                      const graph::BipartiteGraph& g) {
  // Build node -> set of detected communities.
  std::vector<std::set<size_t>> member_of(g.num_left());
  for (size_t ci = 0; ci < detected.communities.size(); ++ci) {
    for (uint32_t v : detected.communities[ci]) member_of[v].insert(ci);
  }
  size_t together = 0;
  size_t total = 0;
  for (int b = 0; b < blocks; ++b) {
    for (int i = 0; i < investors_per_block; ++i) {
      for (int j = i + 1; j < investors_per_block; ++j) {
        uint64_t id_a = static_cast<uint64_t>(b * investors_per_block + i + 1);
        uint64_t id_b = static_cast<uint64_t>(b * investors_per_block + j + 1);
        uint32_t a = g.LeftIndexOf(id_a);
        uint32_t bb = g.LeftIndexOf(id_b);
        if (a == graph::BipartiteGraph::kInvalidIndex ||
            bb == graph::BipartiteGraph::kInvalidIndex) {
          continue;
        }
        ++total;
        bool shared = false;
        for (size_t ci : member_of[a]) shared |= member_of[bb].count(ci) > 0;
        if (shared) ++together;
      }
    }
  }
  return total == 0 ? 0 : static_cast<double>(together) / static_cast<double>(total);
}

// --- CoDA -----------------------------------------------------------------

TEST(CodaTest, RecoversPlantedBlocks) {
  graph::BipartiteGraph g = PlantedBipartite(4, 12, 10, 0.8, 0.2, 5);
  CodaConfig config;
  config.num_communities = 4;
  config.max_iterations = 60;
  config.seed = 3;
  CodaResult result = Coda(config).Fit(g);
  EXPECT_GE(result.investor_communities.communities.size(), 3u);
  double recall = PairwiseRecall(result.investor_communities, 4, 12, g);
  EXPECT_GT(recall, 0.8);
  // Companies group too.
  EXPECT_GE(result.company_communities.communities.size(), 3u);
}

TEST(CodaTest, LogLikelihoodNonDecreasing) {
  graph::BipartiteGraph g = PlantedBipartite(3, 10, 8, 0.7, 0.3, 7);
  CodaConfig config;
  config.num_communities = 3;
  config.max_iterations = 30;
  CodaResult result = Coda(config).Fit(g);
  ASSERT_GE(result.log_likelihood_trace.size(), 2u);
  for (size_t i = 1; i < result.log_likelihood_trace.size(); ++i) {
    EXPECT_GE(result.log_likelihood_trace[i],
              result.log_likelihood_trace[i - 1] - 1e-6)
        << "iteration " << i;
  }
  EXPECT_EQ(result.final_log_likelihood, result.log_likelihood_trace.back());
}

TEST(CodaTest, ConvergesBeforeMaxIterations) {
  graph::BipartiteGraph g = PlantedBipartite(2, 8, 6, 0.9, 0.1, 9);
  CodaConfig config;
  config.num_communities = 2;
  config.max_iterations = 200;
  config.tolerance = 1e-3;
  CodaResult result = Coda(config).Fit(g);
  EXPECT_LT(result.iterations, 200);
}

TEST(CodaTest, EmptyGraph) {
  graph::BipartiteGraph g = graph::BipartiteGraph::FromEdges({});
  CodaResult result = Coda(CodaConfig{}).Fit(g);
  EXPECT_TRUE(result.investor_communities.communities.empty());
}

TEST(CodaTest, DeterministicPerSeed) {
  graph::BipartiteGraph g = PlantedBipartite(3, 10, 8, 0.8, 0.2, 11);
  CodaConfig config;
  config.num_communities = 3;
  config.max_iterations = 20;
  config.num_threads = 1;  // parallel row order does not matter, but be safe
  CodaResult a = Coda(config).Fit(g);
  CodaResult b = Coda(config).Fit(g);
  EXPECT_EQ(a.final_log_likelihood, b.final_log_likelihood);
  ASSERT_EQ(a.investor_communities.communities.size(),
            b.investor_communities.communities.size());
}

TEST(CodaTest, OverlappingMembershipPossible) {
  // A bridge investor invests in both blocks' companies.
  graph::BipartiteGraph g = PlantedBipartite(2, 10, 8, 0.9, 0.0, 13);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (uint32_t l = 0; l < g.num_left(); ++l) {
    for (uint32_t r : g.OutNeighbors(l)) {
      edges.emplace_back(g.LeftId(l), g.RightId(r));
    }
  }
  for (int c = 0; c < 8; ++c) {
    edges.emplace_back(500, 1000 + static_cast<uint64_t>(c));      // block 0
    edges.emplace_back(500, 1000 + static_cast<uint64_t>(8 + c));  // block 1
  }
  graph::BipartiteGraph g2 = graph::BipartiteGraph::FromEdges(edges);
  CodaConfig config;
  config.num_communities = 2;
  config.max_iterations = 60;
  CodaResult result = Coda(config).Fit(g2);
  uint32_t bridge = g2.LeftIndexOf(500);
  int memberships = 0;
  for (const auto& comm : result.investor_communities.communities) {
    if (std::binary_search(comm.begin(), comm.end(), bridge)) ++memberships;
  }
  EXPECT_GE(memberships, 2) << "bridge investor should join both communities";
}

// --- Louvain ----------------------------------------------------------------

graph::WeightedGraph TwoCliques() {
  // Nodes 0-4 clique, 5-9 clique, one weak bridge.
  std::vector<std::tuple<uint32_t, uint32_t, double>> edges;
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = i + 1; j < 5; ++j) {
      edges.emplace_back(i, j, 1.0);
      edges.emplace_back(i + 5, j + 5, 1.0);
    }
  }
  edges.emplace_back(4, 5, 0.1);
  return graph::WeightedGraph::FromEdges(10, edges);
}

TEST(LouvainTest, SeparatesTwoCliques) {
  LouvainResult result = RunLouvain(TwoCliques());
  EXPECT_EQ(result.communities.communities.size(), 2u);
  EXPECT_GT(result.modularity, 0.4);
  // All of 0-4 share a label; all of 5-9 share another.
  for (int v = 1; v < 5; ++v) EXPECT_EQ(result.labels[v], result.labels[0]);
  for (int v = 6; v < 10; ++v) EXPECT_EQ(result.labels[v], result.labels[5]);
  EXPECT_NE(result.labels[0], result.labels[5]);
}

TEST(LouvainTest, IsolatedNodesUnassigned) {
  graph::WeightedGraph g =
      graph::WeightedGraph::FromEdges(4, {{0, 1, 1.0}});  // 2,3 isolated
  LouvainResult result = RunLouvain(g);
  EXPECT_EQ(result.labels[2], -1);
  EXPECT_EQ(result.labels[3], -1);
  EXPECT_EQ(result.labels[0], result.labels[1]);
}

TEST(LouvainTest, EmptyGraph) {
  graph::WeightedGraph g;
  LouvainResult result = RunLouvain(g);
  EXPECT_TRUE(result.communities.communities.empty());
}

TEST(ModularityTest, KnownValues) {
  graph::WeightedGraph g = TwoCliques();
  std::vector<int> perfect(10, 0);
  for (int v = 5; v < 10; ++v) perfect[static_cast<size_t>(v)] = 1;
  std::vector<int> single(10, 0);
  EXPECT_GT(Modularity(g, perfect), Modularity(g, single));
  EXPECT_NEAR(Modularity(g, single), 0.0, 1e-9);
}

// --- label propagation ---------------------------------------------------------

TEST(LabelPropagationTest, SeparatesTwoCliques) {
  LabelPropagationResult result = RunLabelPropagation(TwoCliques());
  EXPECT_EQ(result.communities.communities.size(), 2u);
  for (int v = 1; v < 5; ++v) EXPECT_EQ(result.labels[v], result.labels[0]);
  for (int v = 6; v < 10; ++v) EXPECT_EQ(result.labels[v], result.labels[5]);
}

TEST(LabelPropagationTest, TerminatesOnStableLabels) {
  LabelPropagationResult result = RunLabelPropagation(TwoCliques());
  EXPECT_LT(result.iterations, 50);
}

// --- SBM -------------------------------------------------------------------------

TEST(SbmTest, RecoversPlantedBlocks) {
  graph::BipartiteGraph g = PlantedBipartite(3, 15, 12, 0.7, 0.05, 17);
  SbmConfig config;
  config.num_investor_blocks = 3;
  config.num_company_blocks = 3;
  config.seed = 2;
  SbmResult result = RunSbm(g, config);
  double recall = PairwiseRecall(result.investor_communities, 3, 15, g);
  EXPECT_GT(recall, 0.8);
  EXPECT_LT(result.sweeps, config.max_sweeps + 1);
  EXPECT_LT(result.log_posterior, 0);
}

TEST(SbmTest, LabelsCoverAllNodes) {
  graph::BipartiteGraph g = PlantedBipartite(2, 10, 8, 0.8, 0.1, 19);
  SbmResult result = RunSbm(g);
  EXPECT_EQ(result.investor_labels.size(), g.num_left());
  EXPECT_EQ(result.company_labels.size(), g.num_right());
}

// --- random baseline --------------------------------------------------------------

TEST(RandomBaselineTest, PartitionsAllNodes) {
  CommunitySet set = RandomCommunities(1000, 10, 3);
  size_t total = 0;
  std::set<uint32_t> seen;
  for (const auto& c : set.communities) {
    total += c.size();
    for (uint32_t v : c) {
      EXPECT_TRUE(seen.insert(v).second) << "node in two communities";
    }
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(set.communities.size(), 10u);
  EXPECT_NEAR(set.AverageSize(), 100, 40);
}

TEST(CommunitySetTest, FromLabelsAndPrune) {
  CommunitySet set = CommunitySet::FromLabels({0, 1, 0, -1, 2, 2, 2});
  ASSERT_EQ(set.communities.size(), 3u);
  set.PruneSmall(2);
  ASSERT_EQ(set.communities.size(), 2u);  // singleton label-1 removed
}

}  // namespace
}  // namespace cfnet::community
