#include "dfs/columnar.h"

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/columnar_records.h"
#include "core/platform.h"
#include "core/records.h"
#include "dfs/commit.h"
#include "dfs/dfs.h"
#include "util/crc32.h"
#include "util/thread_pool.h"

namespace cfnet {
namespace {

using core::CrunchBaseRecord;
using core::FacebookRecord;
using core::StartupRecord;
using core::TwitterRecord;
using core::UserRecord;
using dfs::ByteReader;
using dfs::ColumnarWriter;
using dfs::MiniDfs;
using dfs::ScanColumnBlocks;
using dfs::ScanOptions;
using dfs::ScanReport;

/// --- primitive codecs -------------------------------------------------------

TEST(ColumnarCodecTest, VarintEdgeValuesRoundTrip) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             uint64_t{1} << 35,
                             std::numeric_limits<uint64_t>::max() - 1,
                             std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t v : values) dfs::AppendUVarint(buf, v);
  ByteReader r(buf);
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(r.ReadUVarint(&got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(r.done());
}

TEST(ColumnarCodecTest, ZigZagEdgeValuesRoundTrip) {
  const int64_t values[] = {0,
                            -1,
                            1,
                            -2,
                            63,
                            -64,
                            std::numeric_limits<int64_t>::max(),
                            std::numeric_limits<int64_t>::min()};
  for (int64_t v : values) {
    EXPECT_EQ(dfs::ZigZagDecode(dfs::ZigZagEncode(v)), v);
  }
  // Small magnitudes must stay small on the wire (one varint byte).
  EXPECT_LT(dfs::ZigZagEncode(-1), 128u);
  EXPECT_LT(dfs::ZigZagEncode(63), 128u);
}

TEST(ColumnarCodecTest, ByteReaderRejectsTruncation) {
  std::string buf;
  dfs::AppendUVarint(buf, uint64_t{1} << 40);
  buf.pop_back();  // cut the varint short
  ByteReader r(buf);
  uint64_t v;
  EXPECT_FALSE(r.ReadUVarint(&v));

  ByteReader r2("abc");
  std::string_view raw;
  EXPECT_FALSE(r2.ReadRaw(4, &raw));
  uint32_t u32;
  EXPECT_FALSE(r2.ReadU32LE(&u32));
  double d;
  EXPECT_FALSE(r2.ReadF64LE(&d));
}

/// --- record blocks ----------------------------------------------------------

std::vector<StartupRecord> MakeStartups(size_t n) {
  std::vector<StartupRecord> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i].id = 1000 + i * 3;
    rows[i].name = (i % 5 == 0) ? std::string("Repeated Name")
                                : "startup-" + std::to_string(i);
    rows[i].has_twitter_url = (i % 2) != 0;
    rows[i].has_facebook_url = (i % 3) == 0;
    rows[i].has_crunchbase_url = (i % 7) == 0;
    rows[i].has_video = (i % 11) == 0;
    rows[i].fundraising = (i % 4) == 0;
    rows[i].follower_count = static_cast<int64_t>(i) * 17 - 5;
  }
  return rows;
}

std::vector<UserRecord> MakeUsers(size_t n) {
  std::vector<UserRecord> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i].id = 50 + i * 7;
    rows[i].is_investor = (i % 3) == 0;
    rows[i].is_founder = (i % 5) == 0;
    rows[i].is_employee = (i % 2) == 0;
    for (size_t k = 0; k < i % 6; ++k) {
      rows[i].investment_company_ids.push_back(900 + i + k * 13);
    }
    rows[i].following_startup_count = static_cast<int64_t>(i % 40);
    rows[i].following_user_count = static_cast<int64_t>(i % 23);
  }
  return rows;
}

template <typename T>
std::vector<T> FlattenParts(std::vector<std::vector<T>> parts) {
  std::vector<T> out;
  for (auto& p : parts) {
    for (auto& r : p) out.push_back(std::move(r));
  }
  return out;
}

template <typename T>
void RoundTrip(const std::vector<T>& rows, size_t block_rows) {
  MiniDfs dfs;
  dfs::ColumnarWriteOptions options;
  options.block_rows = block_rows;
  options.source_fingerprint = 0xfeedf00d;
  ColumnarWriter<T> writer(&dfs, "/col/part-all.cfc", options);
  for (const T& r : rows) writer.Add(r);
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.rows_added(), rows.size());

  ScanReport report;
  ScanOptions scan;
  scan.report = &report;
  auto parts = ScanColumnBlocks<T>(dfs, {"/col/part-all.cfc"}, scan);
  ASSERT_TRUE(parts.ok()) << parts.status().message();
  const size_t expected_blocks = (rows.size() + block_rows - 1) / block_rows;
  EXPECT_EQ(parts->size(), expected_blocks) << "one partition per block";
  EXPECT_EQ(FlattenParts(std::move(*parts)), rows);
  EXPECT_EQ(report.columnar_files, 1u);
  EXPECT_EQ(report.columnar_blocks_scanned, expected_blocks);
  EXPECT_EQ(report.columnar_blocks_failed, 0u);
  EXPECT_EQ(report.footer_verified_files, 1u);
  EXPECT_EQ(report.records_dropped, 0u);

  auto info = dfs::InspectColumnarFile(&dfs, "/col/part-all.cfc");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->rows, rows.size());
  EXPECT_EQ(info->blocks, expected_blocks);
  EXPECT_EQ(info->source_fingerprint, 0xfeedf00du);
}

TEST(ColumnarRoundTripTest, StartupBlocksAndBoundaries) {
  // Row counts straddling the block boundary: empty, one row, exactly one
  // block, one over, several blocks with a partial tail.
  for (size_t n : {size_t{0}, size_t{1}, size_t{8}, size_t{9}, size_t{37}}) {
    RoundTrip(MakeStartups(n), /*block_rows=*/8);
  }
}

TEST(ColumnarRoundTripTest, UserListsRoundTrip) {
  RoundTrip(MakeUsers(100), /*block_rows=*/16);
}

TEST(ColumnarRoundTripTest, CrunchBaseDoublesBitExact) {
  std::vector<CrunchBaseRecord> rows(20);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i].angellist_id = i + 1;
    rows[i].total_funding_usd = i == 0   ? 0.0
                                : i == 1 ? 0.1 + i
                                : i == 2 ? std::numeric_limits<double>::max()
                                         : 1e6 * i + 0.25;
    rows[i].num_rounds = static_cast<int64_t>(i % 7);
    for (size_t k = 0; k < i % 4; ++k) {
      rows[i].round_investor_ids.push_back(10'000 + i * 31 + k);
    }
  }
  RoundTrip(rows, /*block_rows=*/6);
}

TEST(ColumnarRoundTripTest, FacebookAndTwitter) {
  std::vector<FacebookRecord> fb(15);
  std::vector<TwitterRecord> tw(15);
  for (size_t i = 0; i < 15; ++i) {
    fb[i].angellist_id = i * 2 + 1;
    fb[i].fan_count = static_cast<int64_t>(i) * 1001 - 3;
    tw[i].angellist_id = i * 2 + 1;
    tw[i].statuses_count = static_cast<int64_t>(i) * 7;
    tw[i].followers_count = static_cast<int64_t>(i) * 19 - 1;
    tw[i].followers_count_null = (i % 4) == 0;
  }
  RoundTrip(fb, /*block_rows=*/4);
  RoundTrip(tw, /*block_rows=*/4);
}

TEST(ColumnarScanTest, TypeMismatchFailsStrict) {
  MiniDfs dfs;
  ColumnarWriter<StartupRecord> writer(&dfs, "/col/part-all.cfc");
  for (const StartupRecord& r : MakeStartups(5)) writer.Add(r);
  ASSERT_TRUE(writer.Finish().ok());
  auto as_users = ScanColumnBlocks<UserRecord>(dfs, {"/col/part-all.cfc"});
  ASSERT_FALSE(as_users.ok());
  EXPECT_EQ(as_users.status().code(), StatusCode::kCorruption);
}

TEST(ColumnarScanTest, ParallelScanMatchesSequential) {
  MiniDfs dfs;
  std::vector<StartupRecord> rows = MakeStartups(500);
  dfs::ColumnarWriteOptions options;
  options.block_rows = 32;
  ColumnarWriter<StartupRecord> writer(&dfs, "/col/part-all.cfc", options);
  for (const StartupRecord& r : rows) writer.Add(r);
  ASSERT_TRUE(writer.Finish().ok());
  ThreadPool pool(4);
  ScanOptions scan;
  scan.pool = &pool;
  auto parts = ScanColumnBlocks<StartupRecord>(dfs, {"/col/part-all.cfc"}, scan);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(FlattenParts(std::move(*parts)), rows);
}

/// --- compaction + staleness -------------------------------------------------

TEST(CompactSnapshotTest, CompactionMatchesJsonAndGoesStaleOnAppend) {
  MiniDfs dfs;
  const std::string dir = "/snap/facebook/";
  std::string shard;
  for (int i = 0; i < 20; ++i) {
    shard += "{\"angellist_id\":" + std::to_string(100 + i) +
             ",\"fan_count\":" + std::to_string(i * 11) + "}\n";
  }
  ASSERT_TRUE(dfs::CommitFile(&dfs, dir + "part-0.jsonl", shard).ok());
  ASSERT_TRUE(
      core::CompactSnapshotDir<FacebookRecord>(&dfs, dir, nullptr, 8).ok());
  ASSERT_TRUE(dfs.Exists(core::ColumnarPathFor(dir)));

  auto json_parts = core::ScanSnapshotJson<FacebookRecord>(
      dfs, core::SplitSnapshotFiles(dfs.List(dir)).json, nullptr,
      /*salvage=*/false, nullptr);
  ASSERT_TRUE(json_parts.ok());
  std::vector<FacebookRecord> expected = FlattenParts(std::move(*json_parts));

  ScanReport report;
  auto cols = core::ScanSnapshotRecords<FacebookRecord>(dfs, dir, nullptr,
                                                        /*salvage=*/false,
                                                        &report);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(FlattenParts(std::move(*cols)), expected);
  EXPECT_GT(report.columnar_blocks_scanned, 0u) << "columnar path not taken";

  // Appending to a shard (what dead-letter replay does) must invalidate the
  // compaction: the loader falls back to JSON and sees the new record.
  ASSERT_TRUE(dfs::CommitAppend(&dfs, dir + "part-0.jsonl",
                                "{\"angellist_id\":999,\"fan_count\":1}\n")
                  .ok());
  ScanReport stale_report;
  auto stale = core::ScanSnapshotRecords<FacebookRecord>(dfs, dir, nullptr,
                                                         /*salvage=*/false,
                                                         &stale_report);
  ASSERT_TRUE(stale.ok());
  std::vector<FacebookRecord> records = FlattenParts(std::move(*stale));
  ASSERT_EQ(records.size(), expected.size() + 1);
  EXPECT_EQ(records.back().angellist_id, 999u);
  EXPECT_EQ(stale_report.columnar_blocks_scanned, 0u)
      << "stale columnar file must not be read";

  // Re-compacting refreshes the fingerprint and columnar wins again.
  ASSERT_TRUE(
      core::CompactSnapshotDir<FacebookRecord>(&dfs, dir, nullptr, 8).ok());
  ScanReport fresh_report;
  auto fresh = core::ScanSnapshotRecords<FacebookRecord>(dfs, dir, nullptr,
                                                         /*salvage=*/false,
                                                         &fresh_report);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(FlattenParts(std::move(*fresh)), records);
  EXPECT_GT(fresh_report.columnar_blocks_scanned, 0u);
}

TEST(CompactSnapshotTest, CompactionIsIdempotent) {
  MiniDfs dfs;
  const std::string dir = "/snap/facebook/";
  ASSERT_TRUE(dfs::CommitFile(&dfs, dir + "part-0.jsonl",
                              "{\"angellist_id\":1,\"fan_count\":2}\n")
                  .ok());
  ASSERT_TRUE(core::CompactSnapshotDir<FacebookRecord>(&dfs, dir).ok());
  const uint64_t mutations = dfs.GetStats().mutation_ops;
  ASSERT_TRUE(core::CompactSnapshotDir<FacebookRecord>(&dfs, dir).ok());
  EXPECT_EQ(dfs.GetStats().mutation_ops, mutations)
      << "up-to-date compaction must not rewrite";
}

/// --- end-to-end platform differential --------------------------------------

TEST(ColumnarPlatformTest, CrawlCompactsAndLoadsByteEquivalentRecords) {
  core::ExploratoryPlatform::Options options;
  options.world.scale = 0.01;
  options.analytics_parallelism = 4;
  core::ExploratoryPlatform platform(options);
  ASSERT_TRUE(platform.CollectData().ok());

  // The crawl's post-flush hook compacted every snapshot dir.
  const std::string dirs[] = {platform.crawler().StartupSnapshotDir(),
                              platform.crawler().UserSnapshotDir(),
                              platform.crawler().CrunchBaseSnapshotDir(),
                              platform.crawler().FacebookSnapshotDir(),
                              platform.crawler().TwitterSnapshotDir()};
  for (const std::string& dir : dirs) {
    EXPECT_TRUE(platform.dfs().Exists(core::ColumnarPathFor(dir))) << dir;
  }

  auto inputs = platform.LoadInputs();
  ASSERT_TRUE(inputs.ok());
  EXPECT_GT(platform.scan_report().columnar_blocks_scanned, 0u)
      << "LoadInputs did not take the columnar path";
  EXPECT_EQ(platform.scan_report().columnar_blocks_failed, 0u);
  EXPECT_GT(platform.scan_report().columnar_decoded_bytes,
            platform.scan_report().columnar_encoded_bytes)
      << "columnar encodings should compress the decoded records";

  // Differential: the columnar stream must equal the streaming-JSON stream
  // record for record.
  ThreadPool pool(4);
  auto check = [&](const std::string& dir, auto tag, const auto& typed) {
    using T = decltype(tag);
    auto parts = core::ScanSnapshotJson<T>(
        platform.dfs(), core::SplitSnapshotFiles(platform.dfs().List(dir)).json,
        &pool, /*salvage=*/false, nullptr);
    ASSERT_TRUE(parts.ok());
    EXPECT_EQ(typed, FlattenParts(std::move(*parts))) << dir;
  };
  check(dirs[0], StartupRecord{}, inputs->startups);
  check(dirs[1], UserRecord{}, inputs->users);
  check(dirs[2], CrunchBaseRecord{}, inputs->crunchbase);
  check(dirs[3], FacebookRecord{}, inputs->facebook);
  check(dirs[4], TwitterRecord{}, inputs->twitter);
  EXPECT_FALSE(inputs->startups.empty());
  EXPECT_FALSE(inputs->users.empty());
}

/// --- hardware CRC differential ----------------------------------------------

TEST(Crc32HardwareTest, MatchesTableFallbackOnRandomBuffers) {
  // Pinned vector (every CRC-32/IEEE implementation agrees on this one).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32FallbackUpdate(0, "123456789"), 0xCBF43926u);

  std::mt19937_64 rng(20260808);
  for (int iter = 0; iter < 500; ++iter) {
    const size_t len = static_cast<size_t>(rng() % 4096);
    std::string buf(len, '\0');
    for (char& c : buf) c = static_cast<char>(rng() & 0xff);
    const uint32_t hw = Crc32(buf);
    ASSERT_EQ(hw, Crc32FallbackUpdate(0, buf)) << "len=" << len;
    // Incremental feeding at an arbitrary split point must agree too.
    const size_t cut = len == 0 ? 0 : static_cast<size_t>(rng() % len);
    const std::string_view view(buf);
    ASSERT_EQ(Crc32Update(Crc32Update(0, view.substr(0, cut)), view.substr(cut)),
              hw)
        << "len=" << len << " cut=" << cut;
  }
}

}  // namespace
}  // namespace cfnet
