// Incremental graph & community maintenance (DESIGN.md §15): delta-CSR
// merge differential tests against FromEdges, frontier projection updates
// checked bit-identical to ProjectLeft, warm-started Louvain/LP/CoDA with
// their fallback guards, the EpochMaintainer full-vs-delta policy, and the
// platform's watermark-based AdvanceEpoch over real crawl shards.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "community/coda.h"
#include "community/incremental.h"
#include "community/louvain.h"
#include "core/epoch_maintainer.h"
#include "core/investor_graph.h"
#include "core/platform.h"
#include "graph/bipartite_graph.h"
#include "graph/delta.h"
#include "graph/weighted_graph.h"
#include "net/fault_plan.h"
#include "serve/epoch_store.h"
#include "serve/service.h"
#include "serve/serving_snapshot.h"
#include "util/rng.h"

namespace cfnet {
namespace {

using graph::BipartiteGraph;
using graph::DeltaLog;
using graph::DeltaMergeResult;
using graph::EdgeDelta;
using graph::WeightedGraph;

using EdgeSet = std::set<std::pair<uint64_t, uint64_t>>;

std::vector<std::pair<uint64_t, uint64_t>> ToEdges(const EdgeSet& set) {
  return {set.begin(), set.end()};
}

void ApplyDeltas(EdgeSet& set, const std::vector<EdgeDelta>& deltas) {
  for (const EdgeDelta& d : deltas) {
    if (d.add) {
      set.insert({d.left_id, d.right_id});
    } else {
      set.erase({d.left_id, d.right_id});
    }
  }
}

/// Full structural equality of two bipartite CSRs, external ids included.
void ExpectSameGraph(const BipartiteGraph& a, const BipartiteGraph& b) {
  ASSERT_EQ(a.num_left(), b.num_left());
  ASSERT_EQ(a.num_right(), b.num_right());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (uint32_t l = 0; l < a.num_left(); ++l) {
    ASSERT_EQ(a.LeftId(l), b.LeftId(l));
    auto na = a.OutNeighbors(l);
    auto nb = b.OutNeighbors(l);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "row mismatch at left index " << l;
  }
  for (uint32_t r = 0; r < a.num_right(); ++r) {
    ASSERT_EQ(a.RightId(r), b.RightId(r));
    auto na = a.InNeighbors(r);
    auto nb = b.InNeighbors(r);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "inverse row mismatch at right index " << r;
  }
}

std::vector<double> Flatten(const WeightedGraph& g) {
  std::vector<double> flat;
  flat.push_back(static_cast<double>(g.num_nodes()));
  for (uint32_t v = 0; v < g.num_nodes(); ++v) {
    auto nbrs = g.Neighbors(v);
    auto ws = g.Weights(v);
    flat.push_back(static_cast<double>(nbrs.size()));
    for (size_t i = 0; i < nbrs.size(); ++i) {
      flat.push_back(static_cast<double>(nbrs[i]));
      flat.push_back(ws[i]);
    }
    flat.push_back(g.WeightedDegree(v));
  }
  flat.push_back(g.TotalWeight2m());
  return flat;
}

// ---------------------------------------------------------------------------
// DeltaLog normalization

TEST(DeltaLogTest, NormalizedIsSortedLastOpWins) {
  DeltaLog log;
  log.AddEdge(5, 100);
  log.RemoveEdge(1, 100);
  log.AddEdge(1, 100);    // later op on the same pair wins
  log.AddEdge(5, 100);    // duplicate op collapses
  log.AddEdge(3, 50);
  log.RemoveEdge(3, 50);  // remove wins for (3, 50)
  std::vector<EdgeDelta> norm = log.Normalized();
  ASSERT_EQ(norm.size(), 3u);
  EXPECT_EQ(norm[0], (EdgeDelta{1, 100, true}));
  EXPECT_EQ(norm[1], (EdgeDelta{3, 50, false}));
  EXPECT_EQ(norm[2], (EdgeDelta{5, 100, true}));
}

// ---------------------------------------------------------------------------
// Delta-CSR merge

TEST(DeltaMergeTest, HandcraftedMergeMatchesFromEdges) {
  // Base: investors 10,20,30 over companies 100..103.
  const std::vector<std::pair<uint64_t, uint64_t>> base = {
      {10, 100}, {10, 101}, {20, 101}, {20, 102}, {30, 102}, {30, 103}};
  BipartiteGraph g = BipartiteGraph::FromEdges(base);

  std::vector<EdgeDelta> deltas;
  deltas.push_back({40, 104, true});   // brand-new left AND right
  deltas.push_back({10, 102, true});   // new edge between existing nodes
  deltas.push_back({30, 103, false});  // removes company 103 entirely
  deltas.push_back({20, 101, true});   // noop: already present
  deltas.push_back({10, 999, false});  // noop: never existed
  deltas.push_back({15, 100, true});   // new left between existing lefts

  DeltaMergeResult merge = graph::MergeBipartiteDelta(g, deltas);

  EdgeSet truth(base.begin(), base.end());
  ApplyDeltas(truth, deltas);
  BipartiteGraph expected = BipartiteGraph::FromEdges(ToEdges(truth));
  ExpectSameGraph(merge.graph, expected);

  EXPECT_EQ(merge.stats.noop_deltas, 2u);
  EXPECT_EQ(merge.stats.edges_added, 3u);
  EXPECT_EQ(merge.stats.edges_removed, 1u);
  // Left 20's row is untouched (its only delta was a noop).
  EXPECT_GE(merge.stats.rows_reused, 1u);

  // The remaps carry old indices to new ones consistently.
  ASSERT_EQ(merge.old_to_new_left.size(), g.num_left());
  for (uint32_t l = 0; l < g.num_left(); ++l) {
    const uint32_t nl = merge.old_to_new_left[l];
    if (nl == BipartiteGraph::kInvalidIndex) continue;
    EXPECT_EQ(merge.graph.LeftId(nl), g.LeftId(l));
  }
  ASSERT_EQ(merge.old_to_new_right.size(), g.num_right());
  for (uint32_t r = 0; r < g.num_right(); ++r) {
    const uint32_t nr = merge.old_to_new_right[r];
    if (nr == BipartiteGraph::kInvalidIndex) {
      EXPECT_EQ(g.RightId(r), 103u);  // the dropped company
      continue;
    }
    EXPECT_EQ(merge.graph.RightId(nr), g.RightId(r));
  }
}

TEST(DeltaMergeTest, EmptyBatchReusesEveryRow) {
  const std::vector<std::pair<uint64_t, uint64_t>> base = {
      {1, 100}, {1, 101}, {2, 100}, {3, 102}};
  BipartiteGraph g = BipartiteGraph::FromEdges(base);
  DeltaMergeResult merge = graph::MergeBipartiteDelta(g, {});
  ExpectSameGraph(merge.graph, g);
  EXPECT_EQ(merge.stats.rows_rebuilt, 0u);
  EXPECT_EQ(merge.stats.rows_reused, g.num_left());
  EXPECT_TRUE(merge.touched_rights.empty());
  EXPECT_TRUE(merge.touched_lefts.empty());
}

TEST(DeltaMergeTest, AllNoopBatchIsStructurallyIdentity) {
  const std::vector<std::pair<uint64_t, uint64_t>> base = {
      {1, 100}, {2, 101}, {3, 102}};
  BipartiteGraph g = BipartiteGraph::FromEdges(base);
  std::vector<EdgeDelta> deltas = {{1, 100, true},    // present add
                                   {9, 999, false}};  // absent remove
  DeltaMergeResult merge = graph::MergeBipartiteDelta(g, deltas);
  ExpectSameGraph(merge.graph, g);
  EXPECT_EQ(merge.stats.noop_deltas, 2u);
  EXPECT_EQ(merge.stats.rows_rebuilt, 0u);
}

/// Randomized 50-round chained sweep: the incrementally maintained graph,
/// projection and refined partition are checked against batch ground truth
/// (FromEdges / ProjectLeft / RunLouvain on the accumulated edge set) every
/// round. Covers cap crossings (max_right_degree 8 with Zipfian company
/// popularity), node births/deaths and noop-heavy batches.
TEST(DeltaMergeTest, RandomizedChainedSweepMatchesBatchGroundTruth) {
  constexpr size_t kMaxRightDegree = 8;
  constexpr int kRounds = 50;
  Rng rng(20260809);

  EdgeSet truth;
  for (int i = 0; i < 400; ++i) {
    truth.insert({1 + rng.Next() % 120, 1000 + rng.Next() % 60});
  }
  BipartiteGraph g = BipartiteGraph::FromEdges(ToEdges(truth));
  WeightedGraph proj = WeightedGraph::ProjectLeft(g, kMaxRightDegree);
  community::LouvainResult base = community::RunLouvain(proj);
  std::vector<int> labels = base.labels;
  double modularity = base.modularity;

  for (int round = 0; round < kRounds; ++round) {
    std::vector<EdgeDelta> deltas;
    const size_t batch = 1 + rng.Next() % 25;
    for (size_t i = 0; i < batch; ++i) {
      const uint64_t l = 1 + rng.Next() % 140;   // some ids never seen before
      const uint64_t r = 1000 + rng.Next() % 70;
      deltas.push_back({l, r, rng.Next() % 3 != 0});  // ~1/3 removals
    }

    DeltaMergeResult merge = graph::MergeBipartiteDelta(g, deltas);
    ApplyDeltas(truth, deltas);
    BipartiteGraph expected = BipartiteGraph::FromEdges(ToEdges(truth));
    ExpectSameGraph(merge.graph, expected);

    std::vector<uint32_t> frontier =
        graph::ProjectionFrontier(g, merge, kMaxRightDegree);
    WeightedGraph inc_proj =
        graph::UpdateProjection(proj, g, merge, kMaxRightDegree);
    WeightedGraph full_proj =
        WeightedGraph::ProjectLeft(expected, kMaxRightDegree);
    ASSERT_EQ(Flatten(inc_proj), Flatten(full_proj)) << "round " << round;

    std::vector<int> seeds = community::MapLabels(
        labels, merge.old_to_new_left, merge.graph.num_left());
    community::RefineResult refined = community::RefineLouvain(
        inc_proj, seeds, frontier, modularity, {});
    community::LouvainResult full = community::RunLouvain(full_proj);
    // Documented tolerance (DESIGN.md §15): on adversarial near-random
    // graphs like this one, frontier-restricted refinement (no aggregation
    // levels) may trail a fresh multi-level Louvain by up to 0.1
    // modularity; on the heavy-tailed investor graphs it serves, the gap
    // stays within 0.05 (checked in bench_graph at every delta fraction).
    EXPECT_GE(refined.modularity, full.modularity - 0.10)
        << "round " << round;

    g = std::move(merge.graph);
    proj = std::move(inc_proj);
    labels = std::move(refined.labels);
    modularity = refined.modularity;
  }
}

// ---------------------------------------------------------------------------
// Incremental community refinement

BipartiteGraph TwoClusterGraph() {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (uint64_t inv = 1; inv <= 6; ++inv) {
    for (uint64_t c = 100; c <= 103; ++c) {
      if ((inv + c) % 3 != 0) edges.emplace_back(inv, c);
    }
  }
  for (uint64_t inv = 11; inv <= 16; ++inv) {
    for (uint64_t c = 200; c <= 203; ++c) {
      if ((inv + c) % 4 != 0) edges.emplace_back(inv, c);
    }
  }
  return BipartiteGraph::FromEdges(edges);
}

TEST(RefineTest, NegativeToleranceForcesFullFallback) {
  BipartiteGraph g = TwoClusterGraph();
  WeightedGraph proj = WeightedGraph::ProjectLeft(g, 0);
  community::LouvainResult full = community::RunLouvain(proj);

  community::IncrementalCommunityConfig config;
  config.modularity_drop_tolerance = -1.0;  // any result "drops too much"
  std::vector<uint32_t> frontier = {0};
  community::RefineResult refined = community::RefineLouvain(
      proj, full.labels, frontier, full.modularity, config);
  EXPECT_TRUE(refined.full_rebuild);
  EXPECT_EQ(refined.labels, full.labels);
  EXPECT_DOUBLE_EQ(refined.modularity, full.modularity);
}

TEST(RefineTest, SeededRefinementKeepsFullQuality) {
  BipartiteGraph g = TwoClusterGraph();
  WeightedGraph proj = WeightedGraph::ProjectLeft(g, 0);
  community::LouvainResult full = community::RunLouvain(proj);

  // Perturb a couple of seeds and hand the refiner those vertices as the
  // frontier: it must recover within the drop tolerance without a rebuild.
  std::vector<int> seeds = full.labels;
  std::vector<uint32_t> frontier;
  for (uint32_t v = 0; v < 2 && v < seeds.size(); ++v) {
    seeds[v] = -1;
    frontier.push_back(v);
  }
  community::RefineResult louvain = community::RefineLouvain(
      proj, seeds, frontier, full.modularity, {});
  EXPECT_GE(louvain.modularity, full.modularity - 0.02);
  EXPECT_GT(louvain.active_nodes, 0u);

  community::RefineResult lp = community::RefineLabelPropagation(
      proj, seeds, frontier, full.modularity, {});
  EXPECT_GE(lp.modularity, full.modularity - 0.05);
}

TEST(RefineTest, MapLabelsRemapsAndMarksNewNodes) {
  std::vector<int> previous = {0, 0, 1, 2};
  std::vector<uint32_t> old_to_new = {1, BipartiteGraph::kInvalidIndex, 0, 3};
  std::vector<int> mapped = community::MapLabels(previous, old_to_new, 5);
  ASSERT_EQ(mapped.size(), 5u);
  EXPECT_EQ(mapped[1], 0);   // old 0
  EXPECT_EQ(mapped[0], 1);   // old 2
  EXPECT_EQ(mapped[3], 2);   // old 3
  EXPECT_EQ(mapped[2], -1);  // brand-new node
  EXPECT_EQ(mapped[4], -1);  // brand-new node
}

// ---------------------------------------------------------------------------
// CoDA warm start

TEST(CodaWarmTest, WarmStartTracksColdFitAndFallsBackOnMismatch) {
  BipartiteGraph g = TwoClusterGraph();
  community::CodaConfig config;
  config.num_communities = 4;
  config.max_iterations = 30;
  config.num_threads = 1;
  config.seed = 7;
  community::Coda coda(config);
  community::CodaResult base = coda.Fit(g);
  ASSERT_EQ(base.num_factors, 4);

  // A small delta: one investor picks up a company from the other cluster.
  std::vector<EdgeDelta> deltas = {{1, 200, true}, {16, 103, true}};
  DeltaMergeResult merge = graph::MergeBipartiteDelta(g, deltas);
  std::vector<uint32_t> frontier = graph::ProjectionFrontier(g, merge, 0);

  community::CodaWarmStart warm;
  warm.previous = &base;
  warm.old_to_new_left = merge.old_to_new_left;
  warm.old_to_new_right = merge.old_to_new_right;
  warm.frontier_left = frontier;
  for (const graph::TouchedRight& tr : merge.touched_rights) {
    if (tr.new_index != BipartiteGraph::kInvalidIndex) {
      warm.frontier_right.push_back(tr.new_index);
    }
  }
  std::sort(warm.frontier_right.begin(), warm.frontier_right.end());

  community::CodaResult cold = coda.Fit(merge.graph);
  community::CodaResult warm_fit = coda.FitWarm(merge.graph, warm);
  ASSERT_EQ(warm_fit.num_factors, 4);
  // Same convergence criterion, same model: the warm objective must land
  // within 10% of the cold fit's.
  const double denom = std::max(1.0, std::abs(cold.final_log_likelihood));
  EXPECT_LE(std::abs(warm_fit.final_log_likelihood -
                     cold.final_log_likelihood) / denom,
            0.10);

  // Factor-count mismatch falls back to the cold path, byte for byte.
  community::CodaConfig other = config;
  other.num_communities = 6;
  community::Coda coda6(other);
  community::CodaResult fallback = coda6.FitWarm(merge.graph, warm);
  community::CodaResult cold6 = coda6.Fit(merge.graph);
  EXPECT_EQ(fallback.f, cold6.f);
  EXPECT_EQ(fallback.h, cold6.h);
}

// ---------------------------------------------------------------------------
// EpochMaintainer

std::vector<std::pair<uint64_t, uint64_t>> MaintainerEdges() {
  Rng rng(424242);
  EdgeSet set;
  for (int i = 0; i < 600; ++i) {
    set.insert({1 + rng.Next() % 150, 1000 + rng.Next() % 80});
  }
  return ToEdges(set);
}

TEST(EpochMaintainerTest, AdvanceMatchesFullRebuildAndReportsDeltaPath) {
  const auto edges = MaintainerEdges();
  core::EpochMaintainer::Config config;
  config.max_right_degree = 16;
  core::EpochMaintainer maintainer(config);
  maintainer.FullBuild(edges);
  ASSERT_TRUE(maintainer.has_epoch());
  EXPECT_FALSE(maintainer.last_report().incremental);

  std::vector<EdgeDelta> deltas = {{1, 1000, false},
                                   {500, 1001, true},
                                   {2, 2000, true}};
  const core::EpochArtifacts& arts = maintainer.Advance(deltas);
  EXPECT_TRUE(maintainer.last_report().incremental);
  EXPECT_GT(maintainer.last_report().rows_reused, 0u);

  EdgeSet truth(edges.begin(), edges.end());
  ApplyDeltas(truth, deltas);
  core::EpochMaintainer fresh(config);
  const core::EpochArtifacts& full = fresh.FullBuild(ToEdges(truth));
  ExpectSameGraph(arts.graph, full.graph);
  ASSERT_EQ(Flatten(arts.projection), Flatten(full.projection));
  EXPECT_GE(arts.modularity, full.modularity - 0.05);
}

TEST(EpochMaintainerTest, OversizedDeltaTakesFullRebuildPath) {
  core::EpochMaintainer::Config config;
  config.max_right_degree = 16;
  config.full_rebuild_delta_fraction = 0.01;
  core::EpochMaintainer maintainer(config);
  maintainer.FullBuild(MaintainerEdges());

  std::vector<EdgeDelta> deltas;
  for (uint64_t i = 0; i < 200; ++i) {
    deltas.push_back({300 + i, 3000 + i % 40, true});
  }
  maintainer.Advance(deltas);
  EXPECT_FALSE(maintainer.last_report().incremental);
  EXPECT_GT(maintainer.last_report().delta_edges, 0u);
}

// ---------------------------------------------------------------------------
// Platform AdvanceEpoch: watermark-scanned deltas over real crawl shards.

TEST(PlatformEpochTest, AdvanceEpochBuildsThenAdvancesIncrementally) {
  core::ExploratoryPlatform::Options options;
  options.world.scale = 0.002;
  options.world.seed = 11;
  options.crawl.num_workers = 2;
  options.incremental_epochs = true;
  // The replayed CrunchBase batch is large relative to the user-only
  // baseline; keep the delta path engaged regardless.
  options.epoch_config.full_rebuild_delta_fraction = 1.1;
  std::vector<uint64_t> published;
  std::mutex mu;
  options.epoch_published_hook = [&](uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu);
    published.push_back(epoch);
  };
  core::ExploratoryPlatform platform(options);

  // Crawl with CrunchBase hard-down: its fetches dead-letter, so the first
  // epoch sees only the AngelList investment edges.
  net::FaultPlan outage;
  outage.error_bursts = {{0, 365ll * 24 * 3600 * 1000000ll, 1.0}};
  platform.web().crunchbase().set_fault_plan(outage);
  ASSERT_TRUE(platform.CollectData().ok());
  ASSERT_GT(platform.crawl_report().dead_lettered_ids, 0);

  auto first = platform.AdvanceEpoch();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->full_rebuild);
  EXPECT_GT(first->records_parsed, 0u);
  ASSERT_NE(platform.epoch_maintainer(), nullptr);
  const size_t baseline_edges =
      platform.epoch_maintainer()->artifacts().graph.num_edges();
  EXPECT_GT(baseline_edges, 0u);

  // Nothing new: the next round is an empty incremental epoch.
  auto idle = platform.AdvanceEpoch();
  ASSERT_TRUE(idle.ok()) << idle.status();
  EXPECT_FALSE(idle->full_rebuild);
  EXPECT_EQ(idle->records_parsed, 0u);
  EXPECT_TRUE(idle->build.incremental);
  EXPECT_EQ(idle->build.delta_edges, 0u);

  // CrunchBase recovers; the replay appends new shard bytes, and the next
  // AdvanceEpoch consumes exactly those as deltas.
  platform.web().crunchbase().set_fault_plan({});
  ASSERT_TRUE(platform.crawler().ReplayDeadLetters().ok());
  auto replayed = platform.AdvanceEpoch();
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_FALSE(replayed->full_rebuild);
  EXPECT_GT(replayed->records_parsed, 0u);
  EXPECT_TRUE(replayed->build.incremental);
  EXPECT_GT(replayed->build.delta_edges, 0u);

  // The incrementally maintained graph equals the batch pipeline's.
  auto inputs = platform.LoadInputs();
  ASSERT_TRUE(inputs.ok()) << inputs.status();
  BipartiteGraph batch =
      core::BuildInvestorGraph(platform.context(), inputs.value());
  ExpectSameGraph(platform.epoch_maintainer()->artifacts().graph, batch);

  // Every AdvanceEpoch published a monotonically increasing epoch.
  ASSERT_GE(published.size(), 3u);
  for (size_t i = 1; i < published.size(); ++i) {
    EXPECT_EQ(published[i], published[i - 1] + 1);
  }
}

// ---------------------------------------------------------------------------
// QueryService epoch-build counters

TEST(ServiceStatsTest, RecordEpochBuildSurfacesCounters) {
  serve::EpochStore<serve::ServingSnapshot> store;
  store.Publish(serve::BuildServingSnapshot(1, TwoClusterGraph()));
  serve::QueryServiceConfig config;
  config.worker_threads = 1;
  serve::QueryService service(&store, std::move(config));

  service.RecordEpochBuild(30.0, /*incremental=*/false);
  service.RecordEpochBuild(2.5, /*incremental=*/true);
  service.RecordEpochBuild(1.5, /*incremental=*/true);

  json::Json stats = service.StatsJson();
  const json::Json& epochs = stats.Get("epochs");
  EXPECT_EQ(epochs.Get("epochs_incremental").AsInt(), 2);
  EXPECT_EQ(epochs.Get("epochs_full").AsInt(), 1);
  EXPECT_DOUBLE_EQ(epochs.Get("last_epoch_build_ms").AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(epochs.Get("epoch_build_ms_total").AsDouble(), 34.0);
  service.Shutdown();
}

}  // namespace
}  // namespace cfnet
