#include "json/reader.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json/json.h"

namespace cfnet::json {
namespace {

/// Rebuilds a DOM from the streaming reader via the low-level stepping API.
/// Used to compare the two parsers value-for-value on arbitrary documents.
Result<Json> Reconstruct(JsonReader& r) {
  CFNET_ASSIGN_OR_RETURN(bool is_object, r.EnterObject());
  if (is_object) {
    Json out = Json::MakeObject();
    std::string_view key;
    for (;;) {
      CFNET_ASSIGN_OR_RETURN(bool more, r.NextMember(key));
      if (!more) return out;
      std::string k(key);  // Set() after the next reader call needs a copy
      CFNET_ASSIGN_OR_RETURN(Json v, Reconstruct(r));
      out.Set(k, std::move(v));
    }
  }
  CFNET_ASSIGN_OR_RETURN(bool is_array, r.EnterArray());
  if (is_array) {
    Json out = Json::MakeArray();
    for (;;) {
      CFNET_ASSIGN_OR_RETURN(bool more, r.NextElement());
      if (!more) return out;
      CFNET_ASSIGN_OR_RETURN(Json v, Reconstruct(r));
      out.Append(std::move(v));
    }
  }
  CFNET_ASSIGN_OR_RETURN(JsonReader::Scalar s, r.ReadScalar());
  switch (s.kind) {
    case JsonReader::Scalar::Kind::kNull:
      return Json();
    case JsonReader::Scalar::Kind::kBool:
      return Json(s.b);
    case JsonReader::Scalar::Kind::kInt:
      return Json(s.i);
    case JsonReader::Scalar::Kind::kDouble:
      return Json(s.d);
    case JsonReader::Scalar::Kind::kString:
      return Json(std::string(s.s));
    case JsonReader::Scalar::Kind::kComposite:
      ADD_FAILURE() << "composite scalar after Enter* returned false";
      return Json();
  }
  return Json();
}

Result<Json> StreamParse(std::string_view doc) {
  JsonReader r(doc);
  CFNET_ASSIGN_OR_RETURN(Json v, Reconstruct(r));
  CFNET_RETURN_IF_ERROR(r.Finish());
  return v;
}

/// Type-strict deep equality: operator== treats 1 and 1.0 as equal, but the
/// two parsers must agree on the exact representation (and on double bits).
bool StrictEq(const Json& a, const Json& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.AsBool() == b.AsBool();
    case Json::Type::kInt:
      return a.AsInt() == b.AsInt();
    case Json::Type::kDouble: {
      uint64_t ba = 0;
      uint64_t bb = 0;
      double da = a.AsDouble();
      double db = b.AsDouble();
      std::memcpy(&ba, &da, sizeof(ba));
      std::memcpy(&bb, &db, sizeof(bb));
      return ba == bb || (std::isnan(da) && std::isnan(db));
    }
    case Json::Type::kString:
      return a.AsString() == b.AsString();
    case Json::Type::kArray: {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!StrictEq(a.at(i), b.at(i))) return false;
      }
      return true;
    }
    case Json::Type::kObject: {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a.object()[i].first != b.object()[i].first) return false;
        if (!StrictEq(a.object()[i].second, b.object()[i].second)) return false;
      }
      return true;
    }
  }
  return false;
}

void ExpectSameVerdict(std::string_view doc) {
  Result<Json> dom = Parse(doc);
  Result<Json> streamed = StreamParse(doc);
  ASSERT_EQ(dom.ok(), streamed.ok())
      << "doc: " << doc << "\ndom: "
      << (dom.ok() ? "ok" : dom.status().ToString()) << "\nstream: "
      << (streamed.ok() ? "ok" : streamed.status().ToString());
  if (!dom.ok()) {
    EXPECT_EQ(dom.status().ToString(), streamed.status().ToString())
        << "doc: " << doc;
  } else {
    EXPECT_TRUE(StrictEq(*dom, *streamed))
        << "doc: " << doc << "\ndom: " << dom->Dump()
        << "\nstream: " << streamed->Dump();
  }
}

TEST(JsonReaderDifferentialTest, ValidDocuments) {
  const char* docs[] = {
      "null",
      "true",
      "false",
      "0",
      "-0",
      "42",
      "-7",
      "01",    // leading zeros accepted by both grammars
      "2.5",
      "-0.125",
      "1e5",
      "1E+5",
      "1e-5",
      "3.14159e0",
      "\"\"",
      "\"hello\"",
      "[]",
      "[1,2,3]",
      "[1, \"two\", null, true, 2.5]",
      "{}",
      "{\"a\":1}",
      "{\"a\":{\"b\":[1,{\"c\":null}]},\"d\":\"e\"}",
      "  {  \"a\" : [ 1 , 2 ] , \"b\" : \"c\" }  ",
      "[[[[[]]]]]",
      "[{},{},[],[{}]]",
      "{\"nested\":{\"deep\":{\"deeper\":{\"value\":42}}}}",
  };
  for (const char* doc : docs) ExpectSameVerdict(doc);
}

TEST(JsonReaderDifferentialTest, EscapedAndUnicodeStrings) {
  const char* docs[] = {
      "\"a\\nb\\tc\\rd\\be\\ff\"",
      "\"quote \\\" backslash \\\\ slash \\/\"",
      "\"\\u0041\\u00e9\\u4e2d\\u0001\"",
      "\"\\ud83d\\ude00\"",          // surrogate pair -> U+1F600
      "\"\\ud800\"",                 // lone high surrogate, encoded as-is
      "\"\\udc00\"",                 // lone low surrogate
      "\"\\ud800x\"",                // high surrogate then ordinary char
      "\"\\ud800\\u0041\"",          // high surrogate then non-low escape
      "\"\\u0000\"",                 // NUL via escape
      "\"prefix no escape then \\u00e9 suffix\"",
      "\"\\u00E9 upper and lower \\u00e9\"",
      "{\"ke\\ny\":\"va\\tlue\"}",   // escapes inside keys
      "\"raw control \x01 char\"",   // both parsers accept raw control bytes
  };
  for (const char* doc : docs) ExpectSameVerdict(doc);
}

TEST(JsonReaderDifferentialTest, NumericEdgeCases) {
  const char* docs[] = {
      "9007199254740993",      // 2^53 + 1: exact as int64, not as double
      "9223372036854775807",   // int64 max
      "-9223372036854775808",  // int64 min
      "9223372036854775808",   // int64 overflow -> double
      "-9223372036854775809",
      "18446744073709551616",
      "1e308",
      "1e400",                 // overflows to inf via strtod saturation
      "-1e400",
      "1e-400",                // underflow
      "4.9e-324",              // smallest denormal
      "0.1",
      "123456789.123456789",
      "0.000000000000000000001",
      "1e-0",
      "-0.0",
  };
  for (const char* doc : docs) ExpectSameVerdict(doc);
}

TEST(JsonReaderDifferentialTest, MalformedDocuments) {
  const char* docs[] = {
      "",
      "{",
      "}",
      "[",
      "]",
      "[1,]",
      "{\"a\":}",
      "{\"a\" 1}",
      "{a:1}",
      "tru",
      "nul",
      "falsee",
      "01x",
      "1.e5",
      "1.",
      "--3",
      "+5",
      "\"unterminated",
      "\"bad\\escape\\q\"",
      "\"trunc\\",
      "\"\\u12\"",
      "\"\\u12g4\"",
      "[1] trailing",
      "{\"a\":1,}",
      "[1 2]",
      "{\"a\":1 \"b\":2}",
      "[1,",
      "{\"a\":",
      "{\"a\"",
      "{,}",
      "[,]",
      "nan",
      "inf",
      ".5",
  };
  for (const char* doc : docs) ExpectSameVerdict(doc);
}

TEST(JsonReaderDifferentialTest, DuplicateKeysLastWins) {
  ExpectSameVerdict("{\"a\":1,\"a\":2}");
  ExpectSameVerdict("{\"a\":1,\"b\":2,\"a\":3}");
  ExpectSameVerdict("{\"a\":[1,2],\"a\":\"x\"}");
  ExpectSameVerdict("{\"a\":{\"b\":1},\"a\":{\"c\":2}}");
}

TEST(JsonReaderDifferentialTest, DepthLimitBoundary) {
  auto nested = [](size_t depth, const char* inner) {
    std::string doc;
    for (size_t i = 0; i < depth; ++i) doc += '[';
    doc += inner;
    for (size_t i = 0; i < depth; ++i) doc += ']';
    return doc;
  };
  ExpectSameVerdict(nested(100, "1"));
  ExpectSameVerdict(nested(256, "1"));
  ExpectSameVerdict(nested(257, "1"));  // scalar one level too deep
  ExpectSameVerdict(nested(300, "1"));
  ExpectSameVerdict(nested(257, ""));   // 257 empty arrays: fine in both
  ExpectSameVerdict(nested(258, ""));
  // Truncated deep document: depth verdict must beat end-of-input.
  ExpectSameVerdict(std::string(257, '['));
  ExpectSameVerdict(std::string(300, '['));
}

TEST(JsonReaderTest, ZeroCopyStringsAliasTheInput) {
  const std::string doc = "{\"key\":\"plain value\"}";
  JsonReader r(doc);
  bool saw = false;
  ASSERT_TRUE(r.ForEachMember([&](std::string_view key) -> Status {
                 EXPECT_GE(key.data(), doc.data());
                 EXPECT_LT(key.data(), doc.data() + doc.size());
                 auto v = r.ReadScalar();
                 EXPECT_TRUE(v.ok());
                 EXPECT_EQ(v->AsString(), "plain value");
                 EXPECT_GE(v->s.data(), doc.data());
                 EXPECT_LT(v->s.data(), doc.data() + doc.size());
                 saw = true;
                 return Status::OK();
               }).ok());
  EXPECT_TRUE(saw);
}

TEST(JsonReaderTest, EscapedStringsUseScratchNotInput) {
  const std::string doc = "\"a\\nb\"";
  JsonReader r(doc);
  auto v = r.ReadScalar();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a\nb");
  // Unescaped form cannot alias the raw input.
  EXPECT_TRUE(v->s.data() < doc.data() || v->s.data() >= doc.data() + doc.size());
}

TEST(JsonReaderTest, ScalarCoercionsMirrorDomAccessors) {
  {
    JsonReader r("42");
    auto v = r.ReadScalar();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->AsInt(), 42);
    EXPECT_DOUBLE_EQ(v->AsDouble(), 42.0);
    EXPECT_EQ(v->AsString(), "");
    EXPECT_FALSE(v->AsBool());
  }
  {
    JsonReader r("2.9");
    auto v = r.ReadScalar();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->AsInt(), 2);  // double truncates, as Json::AsInt does
  }
  {
    JsonReader r("\"x\"");
    auto v = r.ReadScalar();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->AsInt(9), 9);
  }
  {
    JsonReader r("[1,2]");
    auto v = r.ReadScalar();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->kind, JsonReader::Scalar::Kind::kComposite);
    EXPECT_EQ(v->AsInt(), 0);
    EXPECT_FALSE(v->is_null());
  }
}

TEST(JsonReaderTest, ForEachMemberOnNonObjectConsumesValue) {
  JsonReader r("[1,2,3]");
  size_t calls = 0;
  ASSERT_TRUE(r.ForEachMember([&](std::string_view) -> Status {
                 ++calls;
                 return r.SkipValue();
               }).ok());
  EXPECT_EQ(calls, 0u);
  EXPECT_TRUE(r.Finish().ok());  // the array was consumed
}

TEST(JsonReaderTest, ForEachElementOnNonArrayConsumesValue) {
  JsonReader r("{\"a\":1}");
  size_t calls = 0;
  ASSERT_TRUE(r.ForEachElement([&]() -> Status {
                 ++calls;
                 return r.SkipValue();
               }).ok());
  EXPECT_EQ(calls, 0u);
  EXPECT_TRUE(r.Finish().ok());
}

TEST(JsonReaderTest, FinishRejectsTrailingGarbage) {
  JsonReader r("{} x");
  ASSERT_TRUE(r.SkipValue().ok());
  Status s = r.Finish();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("trailing characters"), std::string::npos);
}

TEST(JsonReaderTest, DumpRoundTripsThroughBothParsers) {
  // to_chars-based Dump output must reparse identically via both paths.
  Json doc = Json::MakeObject();
  doc.Set("int", int64_t{9007199254740993});
  doc.Set("neg", int64_t{-42});
  doc.Set("pi", 3.141592653589793);
  doc.Set("tenth", 0.1);
  doc.Set("half", 2.5);
  doc.Set("esc", "line\nbreak \"quoted\" \x01");
  Json arr = Json::MakeArray();
  arr.Append(1);
  arr.Append(0.25);
  doc.Set("arr", arr);
  const std::string text = doc.Dump();
  auto dom = Parse(text);
  ASSERT_TRUE(dom.ok());
  auto streamed = StreamParse(text);
  ASSERT_TRUE(streamed.ok());
  EXPECT_TRUE(StrictEq(*dom, *streamed));
  EXPECT_EQ(dom->Dump(), text);
}

}  // namespace
}  // namespace cfnet::json
