#include "core/community_metrics.h"

#include <gtest/gtest.h>

#include "core/experiments.h"

namespace cfnet::core {
namespace {

std::vector<uint32_t> AllLeft(const graph::BipartiteGraph& g) {
  std::vector<uint32_t> all;
  for (uint32_t l = 0; l < g.num_left(); ++l) all.push_back(l);
  return all;
}

// Figure 8 of the paper works through both metrics on two toy communities;
// these tests pin our implementation to the paper's worked numbers.

TEST(ToyExamplesTest, StrongCommunityMeanSharedSizeIs5Thirds) {
  graph::BipartiteGraph g = ToyCommunityExample1();
  EXPECT_NEAR(MeanSharedInvestmentSize(g, AllLeft(g)), 5.0 / 3, 1e-12);
}

TEST(ToyExamplesTest, StrongCommunitySharedInvestorPercentIs100) {
  graph::BipartiteGraph g = ToyCommunityExample1();
  EXPECT_DOUBLE_EQ(SharedInvestorCompanyPercent(g, AllLeft(g), 2), 100.0);
}

TEST(ToyExamplesTest, WeakCommunityMeanSharedSizeIsOneThird) {
  graph::BipartiteGraph g = ToyCommunityExample2();
  EXPECT_NEAR(MeanSharedInvestmentSize(g, AllLeft(g)), 1.0 / 3, 1e-12);
}

TEST(ToyExamplesTest, WeakCommunitySharedInvestorPercentIs25) {
  graph::BipartiteGraph g = ToyCommunityExample2();
  EXPECT_DOUBLE_EQ(SharedInvestorCompanyPercent(g, AllLeft(g), 2), 25.0);
}

TEST(SharedInvestmentSizesTest, EnumeratesAllPairs) {
  graph::BipartiteGraph g = ToyCommunityExample1();
  auto sizes = SharedInvestmentSizes(g, AllLeft(g));
  ASSERT_EQ(sizes.size(), 3u);  // C(3,2)
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<double>{1, 2, 2}));
}

TEST(SharedInvestmentSizesTest, SamplesWhenPairCountLarge) {
  // 100 investors all investing in the same 2 companies.
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (uint64_t i = 1; i <= 100; ++i) {
    edges.emplace_back(i, 500);
    edges.emplace_back(i, 501);
  }
  graph::BipartiteGraph g = graph::BipartiteGraph::FromEdges(edges);
  auto sizes = SharedInvestmentSizes(g, AllLeft(g), /*max_pairs=*/100);
  EXPECT_EQ(sizes.size(), 100u);
  for (double s : sizes) EXPECT_DOUBLE_EQ(s, 2.0);
}

TEST(SharedInvestmentSizesTest, SmallCommunities) {
  graph::BipartiteGraph g = ToyCommunityExample1();
  EXPECT_TRUE(SharedInvestmentSizes(g, {}).empty());
  EXPECT_TRUE(SharedInvestmentSizes(g, {0}).empty());
  EXPECT_EQ(MeanSharedInvestmentSize(g, {0}), 0.0);
}

TEST(SharedInvestorPercentTest, ThresholdK) {
  graph::BipartiteGraph g = ToyCommunityExample1();
  // K=1: trivially every invested company qualifies.
  EXPECT_DOUBLE_EQ(SharedInvestorCompanyPercent(g, AllLeft(g), 1), 100.0);
  // K=3: only company 102 has all three investors.
  EXPECT_NEAR(SharedInvestorCompanyPercent(g, AllLeft(g), 3), 100.0 / 3,
              1e-12);
  // Empty community.
  EXPECT_DOUBLE_EQ(SharedInvestorCompanyPercent(g, {}, 2), 0.0);
}

TEST(MeanSharedInvestorPercentTest, AveragesAcrossCommunities) {
  graph::BipartiteGraph g = ToyCommunityExample1();
  community::CommunitySet set;
  set.num_nodes = g.num_left();
  set.communities = {{0, 1, 2}, {0, 1}};
  // First community: 100%. Second: investors 1,2 (ids 1 and 2) share
  // companies 101,102 of {101,102,103} -> 2/3.
  double expected = (100.0 + 100.0 * 2 / 3) / 2;
  EXPECT_NEAR(MeanSharedInvestorCompanyPercent(g, set, 2), expected, 1e-9);
}

TEST(GlobalSampleTest, SizesAndDeterminism) {
  graph::BipartiteGraph g = ToyCommunityExample1();
  auto a = GlobalSharedInvestmentSample(g, 1000, 5);
  auto b = GlobalSharedInvestmentSample(g, 1000, 5);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a, b);
  auto c = GlobalSharedInvestmentSample(g, 1000, 6);
  EXPECT_NE(a, c);
  // All values must be valid intersection sizes (0..2 for this graph).
  for (double v : a) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
  }
}

TEST(GlobalSampleTest, PairsAreDistinctInvestors) {
  // With 2 investors every sampled pair is (0,1): shared = their true value.
  graph::BipartiteGraph g = graph::BipartiteGraph::FromEdges(
      {{1, 10}, {1, 11}, {2, 10}, {2, 11}});
  auto sample = GlobalSharedInvestmentSample(g, 50, 1);
  for (double v : sample) EXPECT_DOUBLE_EQ(v, 2.0);
}

}  // namespace
}  // namespace cfnet::core
