#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/investor_graph.h"
#include "core/platform.h"
#include "serve/epoch_store.h"
#include "serve/load_gen.h"
#include "serve/queries.h"
#include "serve/service.h"
#include "serve/serving_snapshot.h"

namespace cfnet::serve {
namespace {

/// Two co-investment clusters with distinct name prefixes, plus a bridge
/// investor — small enough to reason about by hand, rich enough that
/// communities, recommendations and prefix search all have signal.
graph::BipartiteGraph TestGraph() {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  // Cluster A: investors 1..4 across companies 101..103.
  for (uint64_t inv = 1; inv <= 4; ++inv) {
    for (uint64_t c = 101; c <= 103; ++c) {
      if ((inv + c) % 4 != 0) edges.emplace_back(inv, c);
    }
  }
  // Cluster B: investors 5..8 across companies 104..106.
  for (uint64_t inv = 5; inv <= 8; ++inv) {
    for (uint64_t c = 104; c <= 106; ++c) {
      if ((inv + c) % 5 != 0) edges.emplace_back(inv, c);
    }
  }
  // Bridge: investor 9 invests on both sides.
  edges.emplace_back(9, 101);
  edges.emplace_back(9, 104);
  return graph::BipartiteGraph::FromEdges(edges);
}

std::string TestInvestorName(uint64_t id) {
  static const char* kNames[] = {"",        "alice",  "alan",  "albert",
                                 "amelia",  "bob",    "bella", "boris",
                                 "bernard", "bridget"};
  if (id < sizeof(kNames) / sizeof(kNames[0])) return kNames[id];
  return "investor-" + std::to_string(id);
}

std::unique_ptr<const ServingSnapshot> MakeSnapshot(uint64_t epoch) {
  SnapshotBuildOptions opts;
  opts.investor_name = TestInvestorName;
  return BuildServingSnapshot(epoch, TestGraph(), opts);
}

// ---------------------------------------------------------------------------
// Query execution (no service): correctness of the endpoints themselves.

class QueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { snap_ = MakeSnapshot(1).release(); }
  static void TearDownTestSuite() {
    delete snap_;
    snap_ = nullptr;
  }
  static const ServingSnapshot& snap() { return *snap_; }

 private:
  static const ServingSnapshot* snap_;
};
const ServingSnapshot* QueryTest::snap_ = nullptr;

TEST_F(QueryTest, SearchPrefixMatchesNames) {
  QueryOutcome out =
      ExecuteQuery(snap(), "investors.search", {{"q", "al"}, {"k", "10"}});
  ASSERT_EQ(out.status, 200);
  const json::Json& rows = out.body.Get("results");
  ASSERT_GE(rows.size(), 3u);  // alice, alan, albert
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows.at(i).Get("name").AsString().substr(0, 2), "al");
  }
  // Ranked by centrality, descending.
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows.at(i - 1).Get("centrality").AsDouble(),
              rows.at(i).Get("centrality").AsDouble());
  }
}

TEST_F(QueryTest, SearchEmptyQueryReturnsMostCentral) {
  QueryOutcome out = ExecuteQuery(snap(), "investors.search", {{"k", "3"}});
  ASSERT_EQ(out.status, 200);
  EXPECT_EQ(out.body.Get("results").size(), 3u);
}

TEST_F(QueryTest, ProfileUnknownIdIs404) {
  QueryOutcome out = ExecuteQuery(snap(), "investors.profile", {{"id", "999"}});
  EXPECT_EQ(out.status, 404);
}

TEST_F(QueryTest, RecommendExcludesExistingInvestors) {
  QueryOutcome out = ExecuteQuery(snap(), "investors.recommend",
                                  {{"startup_id", "101"}, {"k", "10"}});
  ASSERT_EQ(out.status, 200);
  // Existing investors of 101 must not be recommended back.
  std::vector<uint64_t> existing;
  const uint32_t r = snap().graph.RightIndexOf(101);
  for (uint32_t l : snap().graph.InNeighbors(r)) {
    existing.push_back(snap().graph.LeftId(l));
  }
  const json::Json& rows = out.body.Get("recommendations");
  EXPECT_GT(rows.size(), 0u);
  for (size_t i = 0; i < rows.size(); ++i) {
    const uint64_t id = static_cast<uint64_t>(rows.at(i).Get("id").AsInt());
    for (uint64_t e : existing) EXPECT_NE(id, e);
  }
  // Scores are sorted descending.
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows.at(i - 1).Get("score").AsDouble(),
              rows.at(i).Get("score").AsDouble());
  }
}

TEST_F(QueryTest, SimilarExcludesSelf) {
  QueryOutcome out = ExecuteQuery(snap(), "investors.similar",
                                  {{"investor_id", "1"}, {"k", "10"}});
  ASSERT_EQ(out.status, 200);
  const json::Json& rows = out.body.Get("recommendations");
  EXPECT_GT(rows.size(), 0u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_NE(rows.at(i).Get("id").AsInt(), 1);
  }
}

TEST_F(QueryTest, FacetsArePrecomputed) {
  QueryOutcome communities = ExecuteQuery(snap(), "facets.communities", {});
  ASSERT_EQ(communities.status, 200);
  EXPECT_GT(communities.body.Get("communities").size(), 0u);
  QueryOutcome centrality = ExecuteQuery(snap(), "facets.centrality", {});
  ASSERT_EQ(centrality.status, 200);
  EXPECT_GT(centrality.body.Get("most_central").size(), 0u);
}

TEST_F(QueryTest, UnknownEndpointIs404) {
  QueryOutcome out = ExecuteQuery(snap(), "investors.frobnicate", {});
  EXPECT_EQ(out.status, 404);
}

TEST_F(QueryTest, EveryResponseCarriesEpochAndFingerprint) {
  for (const char* ep : {"investors.search", "facets.communities"}) {
    QueryOutcome out = ExecuteQuery(snap(), ep, {});
    EXPECT_EQ(out.body.Get("epoch").AsInt(), 1);
    EXPECT_EQ(static_cast<uint64_t>(out.body.Get("fingerprint").AsInt()),
              snap().content_fingerprint);
  }
}

TEST_F(QueryTest, DegradedLimitsClipButStillAnswer) {
  QueryOutcome out = ExecuteQuery(snap(), "investors.recommend",
                                  {{"startup_id", "101"}, {"k", "10"}},
                                  DegradedLimits());
  ASSERT_EQ(out.status, 200);
  EXPECT_GT(out.body.Get("recommendations").size(), 0u);
}

TEST_F(QueryTest, FingerprintIsParamOrderStable) {
  const uint64_t a = FingerprintQuery("investors.search", {{"q", "al"},
                                                           {"k", "5"}});
  const uint64_t b = FingerprintQuery("investors.search", {{"k", "5"},
                                                           {"q", "al"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, FingerprintQuery("investors.search", {{"q", "al"}}));
}

TEST_F(QueryTest, ClassifyEndpointRoutesClasses) {
  EXPECT_EQ(ClassifyEndpoint("investors.search"), QueryClass::kSearch);
  EXPECT_EQ(ClassifyEndpoint("investors.profile"), QueryClass::kSearch);
  EXPECT_EQ(ClassifyEndpoint("investors.recommend"), QueryClass::kRecommend);
  EXPECT_EQ(ClassifyEndpoint("investors.similar"), QueryClass::kRecommend);
  EXPECT_EQ(ClassifyEndpoint("facets.communities"), QueryClass::kFacet);
  EXPECT_EQ(ClassifyEndpoint("facets.centrality"), QueryClass::kFacet);
}

// ---------------------------------------------------------------------------
// QueryService behavior under a manual clock.

/// Deterministic-time harness: one worker, a manual clock the execution hook
/// can advance, and direct access to the published store.
struct ServiceHarness {
  explicit ServiceHarness(QueryServiceConfig config = {}) {
    config.worker_threads = 1;
    config.now_fn = [this] { return clock.load(); };
    if (!config.execution_hook) {
      config.execution_hook = [this](QueryClass c, bool degraded) {
        if (hook) hook(c, degraded);
      };
    }
    store.Publish(MakeSnapshot(1));
    service = std::make_unique<QueryService>(&store, std::move(config));
  }

  std::atomic<int64_t> clock{0};
  std::function<void(QueryClass, bool)> hook;
  EpochStore<ServingSnapshot> store;
  std::unique_ptr<QueryService> service;
};

TEST(ServeServiceTest, ServesWithinDeadline) {
  ServiceHarness h;
  QueryRequest req("investors.search", {{"q", "al"}});
  QueryResponse resp = h.service->Call(std::move(req));
  EXPECT_EQ(resp.status, 200);
  EXPECT_TRUE(resp.served());
  EXPECT_FALSE(resp.degraded);
  EXPECT_EQ(resp.epoch, 1u);
  EXPECT_EQ(h.service->stats(QueryClass::kSearch).served.load(), 1);
}

TEST(ServeServiceTest, ExpiredQueuedWorkIsShedBeforeExecution) {
  ServiceHarness h;
  std::atomic<bool> gate{false};
  std::atomic<int> execs{0};
  h.hook = [&](QueryClass, bool) {
    if (execs.fetch_add(1) == 0) {
      while (!gate.load()) std::this_thread::sleep_for(
          std::chrono::milliseconds(1));
      h.clock.fetch_add(50'000);  // blows past the 25ms search deadline
    }
  };
  std::promise<QueryResponse> first, second;
  h.service->SubmitAsync(QueryRequest("investors.search", {{"q", "al"}}),
                         [&](QueryResponse r) { first.set_value(std::move(r)); });
  h.service->SubmitAsync(QueryRequest("investors.search", {{"q", "bo"}}),
                         [&](QueryResponse r) { second.set_value(std::move(r)); });
  gate.store(true);

  QueryResponse r1 = first.get_future().get();
  QueryResponse r2 = second.get_future().get();
  // The first executed but finished past its deadline: a timeout, not served.
  EXPECT_EQ(r1.outcome, QueryResponse::Outcome::kTimeout);
  EXPECT_EQ(r1.status, 504);
  // The second expired while queued and was shed without executing.
  EXPECT_EQ(r2.outcome, QueryResponse::Outcome::kShedDeadline);
  EXPECT_EQ(r2.status, 503);
  EXPECT_EQ(execs.load(), 1);

  const ClassStats& cs = h.service->stats(QueryClass::kSearch);
  EXPECT_EQ(cs.timeouts.load(), 1);
  EXPECT_EQ(cs.shed_deadline.load(), 1);
  EXPECT_EQ(cs.served.load(), 0);
}

TEST(ServeServiceTest, FullQueueShedsAtAdmission) {
  QueryServiceConfig config;
  config.search.queue_capacity = 1;
  ServiceHarness h(std::move(config));
  std::atomic<bool> gate{false};
  h.hook = [&](QueryClass, bool) {
    while (!gate.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  };
  std::promise<QueryResponse> p1, p2, p3;
  h.service->SubmitAsync(QueryRequest("investors.search", {{"q", "al"}}),
                         [&](QueryResponse r) { p1.set_value(std::move(r)); });
  // Wait until the worker picked up the first request, so the queue is empty.
  while (h.service->stats(QueryClass::kSearch).queue_latency.count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  h.service->SubmitAsync(QueryRequest("investors.search", {{"q", "be"}}),
                         [&](QueryResponse r) { p2.set_value(std::move(r)); });
  h.service->SubmitAsync(QueryRequest("investors.search", {{"q", "bo"}}),
                         [&](QueryResponse r) { p3.set_value(std::move(r)); });

  // The third submission found the bounded queue full: shed inline.
  QueryResponse r3 = p3.get_future().get();
  EXPECT_EQ(r3.outcome, QueryResponse::Outcome::kShedQueueFull);
  EXPECT_EQ(r3.status, 503);
  gate.store(true);
  EXPECT_TRUE(p1.get_future().get().served());
  EXPECT_TRUE(p2.get_future().get().served());
  EXPECT_EQ(h.service->stats(QueryClass::kSearch).shed_queue_full.load(), 1);
}

TEST(ServeServiceTest, SlowClassDegradesAndRecovers) {
  QueryServiceConfig config;
  config.recommend.latency_budget_micros = 1000;
  config.recommend.breaker.failure_threshold = 3;
  config.recommend.breaker.cooldown_micros = 100'000;
  config.recommend.breaker.half_open_probes = 1;
  config.recommend.default_deadline_micros = 1'000'000;  // no timeouts here
  ServiceHarness h(std::move(config));
  std::atomic<bool> slow{true};
  h.hook = [&](QueryClass c, bool degraded) {
    if (c == QueryClass::kRecommend && !degraded && slow.load()) {
      h.clock.fetch_add(5000);  // full executions blow the 1ms budget
    }
  };
  auto recommend = [&](int i) {
    return h.service->Call(QueryRequest(
        "investors.recommend",
        {{"startup_id", std::to_string(101 + i % 6)}, {"k", "5"}}));
  };

  // Three slow full executions trip the breaker...
  for (int i = 0; i < 3; ++i) {
    QueryResponse resp = recommend(i);
    EXPECT_TRUE(resp.served());
    EXPECT_FALSE(resp.degraded);
  }
  EXPECT_EQ(h.service->breaker(QueryClass::kRecommend).state(),
            util::CircuitBreaker::State::kOpen);

  // ...after which the class serves degraded (marked) answers instead of
  // queueing more slow work.
  QueryResponse degraded = recommend(3);
  EXPECT_TRUE(degraded.served());
  EXPECT_TRUE(degraded.degraded);
  EXPECT_TRUE(degraded.body->Get("degraded").AsBool());
  EXPECT_EQ(degraded.status, 200);
  EXPECT_GE(h.service->stats(QueryClass::kRecommend).degraded.load(), 1);

  // Search never tripped: the slow class cannot starve it.
  QueryResponse search =
      h.service->Call(QueryRequest("investors.search", {{"q", "al"}}));
  EXPECT_FALSE(search.degraded);

  // Past the cooldown, a fast probe closes the breaker again.
  slow.store(false);
  h.clock.fetch_add(200'000);
  QueryResponse probe = recommend(4);
  EXPECT_TRUE(probe.served());
  EXPECT_FALSE(probe.degraded);
  EXPECT_EQ(h.service->breaker(QueryClass::kRecommend).state(),
            util::CircuitBreaker::State::kClosed);
}

TEST(ServeServiceTest, RepeatQueryHitsCache) {
  ServiceHarness h;
  QueryRequest req("investors.search", {{"q", "al"}, {"k", "5"}});
  QueryResponse miss = h.service->Call(req);
  ASSERT_TRUE(miss.served());
  EXPECT_FALSE(miss.cache_hit);
  QueryResponse hit = h.service->Call(req);
  ASSERT_TRUE(hit.served());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(*hit.body, *miss.body);
  EXPECT_EQ(h.service->stats(QueryClass::kSearch).cache_hits.load(), 1);
}

TEST(ServeServiceTest, CacheEntriesExpireByTtl) {
  QueryServiceConfig config;
  config.cache_ttl_micros = 1000;
  ServiceHarness h(std::move(config));
  QueryRequest req("investors.search", {{"q", "al"}});
  EXPECT_FALSE(h.service->Call(req).cache_hit);
  EXPECT_TRUE(h.service->Call(req).cache_hit);
  h.clock.fetch_add(2000);
  EXPECT_FALSE(h.service->Call(req).cache_hit);
  EXPECT_GE(h.service->cache().stats().ttl_expirations.load(), 1);
}

TEST(ServeServiceTest, SnapshotSwapInvalidatesCache) {
  ServiceHarness h;
  QueryRequest req("investors.search", {{"q", "al"}});
  QueryResponse before = h.service->Call(req);
  ASSERT_TRUE(h.service->Call(req).cache_hit);

  h.store.Publish(MakeSnapshot(2));
  QueryResponse after = h.service->Call(req);
  // New epoch: the cached old-epoch entry is structurally unreachable.
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_EQ(after.body->Get("epoch").AsInt(), 2);
  EXPECT_EQ(before.epoch, 1u);
  // And the eager eviction dropped the dead entries.
  EXPECT_GE(h.service->cache().stats().epoch_evictions.load(), 1);
}

TEST(ServeServiceTest, NoSnapshotPublishedAnswers503) {
  EpochStore<ServingSnapshot> store;
  QueryServiceConfig config;
  config.worker_threads = 1;
  QueryService service(&store, std::move(config));
  QueryResponse resp =
      service.Call(QueryRequest("investors.search", {{"q", "al"}}));
  EXPECT_EQ(resp.status, 503);
}

TEST(ServeServiceTest, ShutdownShedsQueuedWork) {
  ServiceHarness h;
  std::atomic<bool> gate{false};
  h.hook = [&](QueryClass, bool) {
    while (!gate.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  };
  std::promise<QueryResponse> p1, p2;
  h.service->SubmitAsync(QueryRequest("investors.search", {{"q", "al"}}),
                         [&](QueryResponse r) { p1.set_value(std::move(r)); });
  while (h.service->stats(QueryClass::kSearch).queue_latency.count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  h.service->SubmitAsync(QueryRequest("investors.search", {{"q", "bo"}}),
                         [&](QueryResponse r) { p2.set_value(std::move(r)); });
  std::thread shutdown([&] { h.service->Shutdown(); });
  gate.store(true);
  shutdown.join();
  EXPECT_TRUE(p1.get_future().get().served());
  EXPECT_EQ(p2.get_future().get().outcome,
            QueryResponse::Outcome::kShedShutdown);
  // Post-shutdown submissions are shed inline, not lost.
  QueryResponse late =
      h.service->Call(QueryRequest("investors.search", {{"q", "al"}}));
  EXPECT_EQ(late.outcome, QueryResponse::Outcome::kShedShutdown);
}

TEST(ServeServiceTest, StatsJsonCarriesPerClassAccounting) {
  ServiceHarness h;
  h.service->Call(QueryRequest("investors.search", {{"q", "al"}}));
  h.service->Call(QueryRequest("facets.communities"));
  json::Json doc = h.service->StatsJson();
  EXPECT_EQ(doc.Get("classes").Get("search").Get("served").AsInt(), 1);
  EXPECT_EQ(doc.Get("classes").Get("facet").Get("served").AsInt(), 1);
  EXPECT_EQ(doc.Get("epochs").Get("current").AsInt(), 1);
}

// ---------------------------------------------------------------------------
// Load generator smoke: personas produce well-formed requests, closed loop
// aggregates sanely, and no response is ever torn.

TEST(ServeLoadGenTest, ClosedLoopServesCleanTraffic) {
  EpochStore<ServingSnapshot> store;
  store.Publish(MakeSnapshot(1));
  QueryServiceConfig config;
  config.worker_threads = 2;
  QueryService service(&store, std::move(config));
  auto pin = store.Acquire();
  WorkloadGenerator gen(*pin, PersonaMix{});

  ClosedLoopConfig load;
  load.clients = 3;
  load.requests_per_client = 50;
  load.seed = 7;
  LoadResult result = RunClosedLoop(service, gen, load);
  EXPECT_EQ(result.issued, 150);
  EXPECT_EQ(result.served + result.timeouts + result.shed_queue_full +
                result.shed_deadline + result.shed_shutdown,
            result.issued);
  EXPECT_GT(result.served, 0);
  EXPECT_EQ(result.torn_responses, 0);
  EXPECT_EQ(result.epochs_seen, 1);
}

// ---------------------------------------------------------------------------
// Platform integration: every crawl flush publishes a snapshot epoch.

TEST(ServePlatformTest, CrawlFlushesPublishEpochs) {
  core::ExploratoryPlatform::Options options;
  options.world.scale = 0.002;
  options.world.seed = 11;
  options.crawl.num_workers = 2;
  std::vector<uint64_t> epochs;
  std::mutex mu;
  options.epoch_published_hook = [&](uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu);
    epochs.push_back(epoch);
  };
  core::ExploratoryPlatform platform(options);
  ASSERT_TRUE(platform.CollectData().ok());
  ASSERT_FALSE(epochs.empty());
  for (size_t i = 1; i < epochs.size(); ++i) {
    EXPECT_EQ(epochs[i], epochs[i - 1] + 1);
  }
  EXPECT_EQ(platform.snapshot_epoch(), epochs.back());

  // The published epochs can feed the serving tier end to end: build a
  // snapshot from the crawled graph and answer a query against it.
  auto inputs = platform.LoadInputs();
  ASSERT_TRUE(inputs.ok()) << inputs.status();
  graph::BipartiteGraph g =
      core::BuildInvestorGraph(platform.context(), inputs.value());
  ASSERT_GT(g.num_left(), 0u);
  SnapshotBuildOptions build;
  const synth::World& world = platform.world();
  build.investor_name = [&world](uint64_t id) {
    const synth::UserTruth* u = world.FindUser(id);
    return u != nullptr ? u->name : "investor-" + std::to_string(id);
  };
  build.company_name = [&world](uint64_t id) {
    const synth::CompanyTruth* c = world.FindCompany(id);
    return c != nullptr ? c->name : "company-" + std::to_string(id);
  };
  EpochStore<ServingSnapshot> store;
  store.Publish(BuildServingSnapshot(platform.snapshot_epoch(), g, build));
  QueryService service(&store, {});
  QueryResponse resp = service.Call(QueryRequest("facets.communities"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_TRUE(resp.served());
  EXPECT_GT(resp.body->Get("communities").size(), 0u);
}

}  // namespace
}  // namespace cfnet::serve
