#include "crawler/crawler.h"

#include <set>

#include <gtest/gtest.h>

#include "dfs/jsonl.h"
#include "crawler/periodic.h"
#include "net/social_web.h"
#include "synth/world.h"
#include "util/rng.h"

namespace cfnet::crawler {
namespace {

struct TestBed {
  std::unique_ptr<synth::World> world;
  std::unique_ptr<net::SocialWeb> web;
  std::unique_ptr<dfs::MiniDfs> dfs;
  std::unique_ptr<Crawler> crawler;
};

TestBed MakeTestBed(double scale = 0.003, int workers = 4,
                    CrawlConfig config = {}) {
  TestBed bed;
  synth::WorldConfig wc;
  wc.scale = scale;
  wc.seed = 99;
  bed.world = std::make_unique<synth::World>(synth::World::Generate(wc));
  bed.web = std::make_unique<net::SocialWeb>(bed.world.get());
  bed.dfs = std::make_unique<dfs::MiniDfs>();
  config.num_workers = workers;
  bed.crawler =
      std::make_unique<Crawler>(bed.web.get(), bed.dfs.get(), config);
  return bed;
}

class CrawlerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bed_ = new TestBed(MakeTestBed());
    ASSERT_TRUE(bed_->crawler->Run().ok());
  }
  static void TearDownTestSuite() {
    delete bed_;
    bed_ = nullptr;
  }
  static TestBed& bed() { return *bed_; }

 private:
  static TestBed* bed_;
};

TestBed* CrawlerFixture::bed_ = nullptr;

TEST_F(CrawlerFixture, BfsDiscoversEssentiallyEverything) {
  const CrawlReport& report = bed().crawler->report();
  // Follow edges connect the graph densely, so the frontier BFS reaches
  // (essentially) every company and user, like the paper's >700K of 744K.
  EXPECT_GE(report.companies_crawled,
            static_cast<int64_t>(bed().world->companies().size() * 95 / 100));
  EXPECT_GE(report.users_crawled,
            static_cast<int64_t>(bed().world->users().size() * 95 / 100));
  EXPECT_GE(report.bfs_rounds, 2);
}

TEST_F(CrawlerFixture, CrunchBaseProfilesMatchFundedCompanies) {
  const CrawlReport& report = bed().crawler->report();
  int64_t funded = 0;
  for (const auto& c : bed().world->companies()) {
    if (c.raised_funding) ++funded;
  }
  // Backlink verification rejects false name matches; every funded company
  // that was crawled should be augmented (URL or unique-name search).
  EXPECT_LE(report.crunchbase_profiles, funded);
  EXPECT_GE(report.crunchbase_profiles, funded * 9 / 10);
  EXPECT_GT(report.crunchbase_matched_by_url, 0);
  EXPECT_GT(report.crunchbase_matched_by_search, 0);
}

TEST_F(CrawlerFixture, SocialProfileCountsMatchTruth) {
  const CrawlReport& report = bed().crawler->report();
  int64_t fb = 0;
  int64_t tw = 0;
  for (const auto& c : bed().world->companies()) {
    if (c.has_facebook()) ++fb;
    if (c.has_twitter()) ++tw;
  }
  // Transient errors may drop a handful.
  EXPECT_NEAR(static_cast<double>(report.facebook_profiles), fb, fb * 0.02 + 2);
  EXPECT_NEAR(static_cast<double>(report.twitter_profiles), tw, tw * 0.02 + 2);
}

TEST_F(CrawlerFixture, SnapshotsParseAndCoverCrawl) {
  auto files = bed().dfs->List(bed().crawler->StartupSnapshotDir());
  ASSERT_FALSE(files.empty());
  std::set<int64_t> ids;
  for (const auto& f : files) {
    auto records = dfs::ReadJsonLines(*bed().dfs, f);
    ASSERT_TRUE(records.ok()) << records.status();
    for (const auto& r : *records) {
      EXPECT_TRUE(r.Has("id"));
      EXPECT_TRUE(r.Has("name"));
      ids.insert(r.Get("id").AsInt());
    }
  }
  EXPECT_EQ(static_cast<int64_t>(ids.size()),
            bed().crawler->report().companies_crawled);
}

TEST_F(CrawlerFixture, TwitterSnapshotsCarryAngelListIds) {
  auto files = bed().dfs->List(bed().crawler->TwitterSnapshotDir());
  ASSERT_FALSE(files.empty());
  size_t records_seen = 0;
  for (const auto& f : files) {
    auto records = dfs::ReadJsonLines(*bed().dfs, f);
    ASSERT_TRUE(records.ok());
    for (const auto& r : *records) {
      ++records_seen;
      int64_t id = r.Get("angellist_id").AsInt();
      const synth::CompanyTruth* c =
          bed().world->FindCompany(static_cast<uint64_t>(id));
      ASSERT_NE(c, nullptr);
      EXPECT_TRUE(c->has_twitter());
      EXPECT_EQ(r.Get("statuses_count").AsInt(), c->twitter_tweets);
    }
  }
  EXPECT_EQ(records_seen,
            static_cast<size_t>(bed().crawler->report().twitter_profiles));
}

TEST_F(CrawlerFixture, ReportCountersPlausible) {
  const CrawlReport& report = bed().crawler->report();
  EXPECT_GT(report.fetch.requests, report.companies_crawled);
  EXPECT_GT(report.makespan_micros, 0);
  EXPECT_GT(report.wall_seconds, 0);
  EXPECT_EQ(report.twitter_tokens, 2 * 5);  // machines x apps
  EXPECT_EQ(report.fetch.failures, 0);      // retries absorb 503s
}

TEST(CrawlerTest, MaxBfsRoundsBoundsTheCrawl) {
  CrawlConfig config;
  config.max_bfs_rounds = 1;
  TestBed bed = MakeTestBed(0.003, 4, config);
  ASSERT_TRUE(bed.crawler->Run().ok());
  EXPECT_LE(bed.crawler->report().bfs_rounds, 1);
  EXPECT_LT(bed.crawler->report().companies_crawled,
            static_cast<int64_t>(bed.world->companies().size()));
}

TEST(CrawlerTest, SingleWorkerStillCompletes) {
  TestBed bed = MakeTestBed(0.002, 1);
  ASSERT_TRUE(bed.crawler->Run().ok());
  EXPECT_GE(bed.crawler->report().companies_crawled,
            static_cast<int64_t>(bed.world->companies().size() * 9 / 10));
}

TEST(CrawlerTest, MoreTokensReduceTwitterMakespan) {
  // With one token the Twitter crawl serializes behind the 180/15min
  // window; with 10 tokens rotation avoids most waiting.
  CrawlConfig one_token;
  one_token.num_twitter_machines = 1;
  one_token.twitter_apps_per_machine = 1;
  TestBed a = MakeTestBed(0.004, 4, one_token);
  ASSERT_TRUE(a.crawler->Run().ok());

  CrawlConfig many_tokens;
  many_tokens.num_twitter_machines = 2;
  many_tokens.twitter_apps_per_machine = 5;
  TestBed b = MakeTestBed(0.004, 4, many_tokens);
  ASSERT_TRUE(b.crawler->Run().ok());

  int64_t tw_count = a.crawler->report().twitter_profiles;
  ASSERT_GT(tw_count, 180);  // enough to hit the limit
  EXPECT_GT(a.crawler->report().fetch.rate_limit_waits,
            b.crawler->report().fetch.rate_limit_waits);
  EXPECT_GT(a.crawler->report().makespan_micros,
            b.crawler->report().makespan_micros);
}

TEST(CrawlerTest, SnapshotsCanBeDisabled) {
  CrawlConfig config;
  config.store_snapshots = false;
  TestBed bed = MakeTestBed(0.002, 4, config);
  ASSERT_TRUE(bed.crawler->Run().ok());
  EXPECT_TRUE(bed.dfs->List("/crawl/").empty());
  EXPECT_GT(bed.crawler->report().companies_crawled, 0);
}

TEST(FetchTest, RetriesTransientErrors) {
  synth::WorldConfig wc;
  wc.scale = 0.002;
  synth::World world = synth::World::Generate(wc);
  net::ServiceConfig sc;
  sc.transient_error_rate = 0.5;
  net::AngelListService al(&world, sc);
  FetchPolicy policy;
  policy.max_retries = 10;
  FetchCounters counters;
  int64_t t = 0;
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    net::ApiResponse resp =
        FetchWithRetry(&al, net::ApiRequest("startups.get", {{"id", "1"}}),
                       nullptr, policy, &t, &counters);
    if (resp.ok()) ++ok;
  }
  EXPECT_EQ(ok, 50);  // retries hide a 50% error rate
  EXPECT_GT(counters.retries, 10);
}

TEST(FetchTest, TokenPoolRotation) {
  TokenPool pool({"a", "b", "c"});
  EXPECT_EQ(pool.current(), "a");
  pool.Rotate();
  EXPECT_EQ(pool.current(), "b");
  pool.Rotate();
  pool.Rotate();
  EXPECT_EQ(pool.current(), "a");
  TokenPool offset({"a", "b", "c"}, 2);
  EXPECT_EQ(offset.current(), "c");
}

}  // namespace
}  // namespace cfnet::crawler

namespace cfnet::crawler {
namespace {

// --- periodic cohort crawler (§7 daily tracking) ----------------------------

TEST(PeriodicCrawlerTest, DailySnapshotsTrackTheEvolvingCohort) {
  synth::WorldConfig wc;
  wc.scale = 0.003;
  wc.seed = 321;
  synth::World world = synth::World::Generate(wc);
  dfs::MiniDfs dfs;
  PeriodicCohortCrawler daily(&dfs);
  Rng rng(5);

  int64_t day0_raising = 0;
  for (int day = 0; day < 3; ++day) {
    net::SocialWeb web(&world);  // fresh services over the evolved world
    auto report = daily.CrawlDay(&web, day);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->day, day);
    EXPECT_GT(report->raising_companies, 0);
    EXPECT_EQ(report->profiles_stored, report->raising_companies);
    if (day == 0) day0_raising = report->raising_companies;

    auto records = daily.ReadDay(day);
    ASSERT_TRUE(records.ok());
    EXPECT_EQ(static_cast<int64_t>(records->size()), report->profiles_stored);
    for (const auto& r : *records) {
      EXPECT_EQ(r.Get("day").AsInt(), day);
      EXPECT_TRUE(r.Get("fundraising").AsBool());
    }
    world.EvolveOneDay(rng);
  }
  // Three dated snapshot files exist.
  EXPECT_EQ(dfs.List("/longitudinal/").size(), 3u);
  (void)day0_raising;
}

TEST(PeriodicCrawlerTest, TwitterEngagementAttachedWhenLinked) {
  synth::WorldConfig wc;
  wc.scale = 0.004;
  wc.seed = 33;
  // Boost the raising pool so some raising companies have Twitter.
  wc.frac_currently_raising = 0.05;
  synth::World world = synth::World::Generate(wc);
  dfs::MiniDfs dfs;
  PeriodicCohortCrawler daily(&dfs);
  net::SocialWeb web(&world);
  auto report = daily.CrawlDay(&web, 0);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->twitter_profiles, 0);
  auto records = daily.ReadDay(0);
  ASSERT_TRUE(records.ok());
  size_t with_followers = 0;
  for (const auto& r : *records) {
    if (r.Has("twitter_followers")) {
      ++with_followers;
      const synth::CompanyTruth* c = world.FindCompany(
          static_cast<synth::CompanyId>(r.Get("id").AsInt()));
      ASSERT_NE(c, nullptr);
      EXPECT_EQ(r.Get("twitter_followers").AsInt(), c->twitter_followers);
    }
  }
  EXPECT_GT(with_followers, 0u);
}

// --- world evolution invariants ------------------------------------------------

TEST(EvolveOneDayTest, IndicesStayConsistent) {
  synth::WorldConfig wc;
  wc.scale = 0.004;
  wc.seed = 77;
  synth::World world = synth::World::Generate(wc);
  Rng rng(9);
  synth::World::DayReport total;
  for (int day = 0; day < 30; ++day) {
    synth::World::DayReport r = world.EvolveOneDay(rng);
    total.campaigns_closed += r.campaigns_closed;
    total.campaigns_succeeded += r.campaigns_succeeded;
    total.new_investments += r.new_investments;
  }
  EXPECT_GT(total.campaigns_closed, 0);

  // Every user's investments stay sorted/unique with parallel flags, and
  // inverted indices stay in sync.
  for (const auto& u : world.users()) {
    ASSERT_EQ(u.investments.size(), u.investment_on_angellist.size());
    for (size_t i = 1; i < u.investments.size(); ++i) {
      ASSERT_LT(u.investments[i - 1], u.investments[i]);
    }
    for (synth::CompanyId c : u.investments) {
      const auto& investors = world.InvestorsOf(c);
      EXPECT_NE(std::find(investors.begin(), investors.end(), u.id),
                investors.end());
    }
  }
  // New rounds belong to funded companies and the hidden-edge invariant
  // still holds: AngelList-hidden edges appear in some round.
  for (const auto& round : world.rounds()) {
    EXPECT_TRUE(world.FindCompany(round.company)->raised_funding);
  }
  for (const auto& u : world.users()) {
    for (size_t i = 0; i < u.investments.size(); ++i) {
      if (u.investment_on_angellist[i]) continue;
      bool found = false;
      for (size_t round_idx : world.RoundsOf(u.investments[i])) {
        const auto& round = world.rounds()[round_idx];
        found |= std::find(round.investors.begin(), round.investors.end(),
                           u.id) != round.investors.end();
      }
      EXPECT_TRUE(found) << "hidden edge not recoverable after evolution";
    }
  }
}

TEST(EvolveOneDayTest, EngagementDriftsUpward) {
  synth::WorldConfig wc;
  wc.scale = 0.003;
  wc.seed = 55;
  synth::World world = synth::World::Generate(wc);
  int64_t before = 0;
  for (const auto& c : world.companies()) before += c.facebook_likes;
  Rng rng(3);
  for (int day = 0; day < 10; ++day) world.EvolveOneDay(rng);
  int64_t after = 0;
  for (const auto& c : world.companies()) after += c.facebook_likes;
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace cfnet::crawler

namespace cfnet::crawler {
namespace {

TEST(CrawlerTest, PatientRetriesRideOutServiceOutage) {
  // AngelList goes down for 2 virtual minutes; a patient exponential
  // backoff (0.5s * (2^12 - 1) ~ 34 min of budget) waits the window out,
  // while an impatient one fails permanently.
  synth::WorldConfig wc;
  wc.scale = 0.002;
  wc.seed = 99;
  synth::World world = synth::World::Generate(wc);
  net::ServiceConfig al_config;
  al_config.latency_mean_micros = 80000;
  al_config.transient_error_rate = 0;
  al_config.outage_windows = {{30ll * 1000000, 150ll * 1000000}};
  net::AngelListService al(&world, al_config);

  FetchPolicy patient;
  patient.max_retries = 12;
  FetchCounters counters;
  int64_t t = 30ll * 1000000;  // the outage has just begun
  net::ApiResponse resp =
      FetchWithRetry(&al, net::ApiRequest("startups.get", {{"id", "1"}}),
                     nullptr, patient, &t, &counters);
  EXPECT_TRUE(resp.ok()) << "patient retry should outlast the outage";
  EXPECT_GT(t, 150ll * 1000000);  // clock advanced past the window
  EXPECT_GT(counters.retries, 3);
  EXPECT_GT(al.stats().outage_rejections.load(), 3);

  // An impatient policy inside the same window fails.
  FetchPolicy impatient;
  impatient.max_retries = 2;
  int64_t t2 = 35ll * 1000000;
  net::ApiResponse fail =
      FetchWithRetry(&al, net::ApiRequest("startups.get", {{"id", "1"}}),
                     nullptr, impatient, &t2, &counters);
  EXPECT_EQ(fail.status, 503);
  EXPECT_GT(counters.failures, 0);
}

}  // namespace
}  // namespace cfnet::crawler
