#include "dfs/jsonl.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/columnar_records.h"
#include "core/platform.h"
#include "core/records.h"
#include "dfs/columnar.h"
#include "json/json.h"
#include "json/reader.h"
#include "util/thread_pool.h"

namespace cfnet {
namespace {

using core::CrunchBaseRecord;
using core::FacebookRecord;
using core::StartupRecord;
using core::TwitterRecord;
using core::UserRecord;
using dfs::MiniDfs;
using dfs::ScanOptions;

std::vector<json::Json> Flatten(std::vector<std::vector<json::Json>> parts) {
  std::vector<json::Json> out;
  for (auto& p : parts) {
    for (auto& v : p) out.push_back(std::move(v));
  }
  return out;
}

TEST(ScanJsonLinesTest, MatchesReadJsonLinesAcrossShards) {
  MiniDfs dfs;
  ASSERT_TRUE(dfs.WriteFile("/snap/part-0", "{\"id\":1}\n{\"id\":2}\n").ok());
  ASSERT_TRUE(dfs.WriteFile("/snap/part-1", "\n{\"id\":3}\n\n{\"id\":4}").ok());
  ASSERT_TRUE(dfs.WriteFile("/snap/part-2", "").ok());
  const std::vector<std::string> paths = {"/snap/part-0", "/snap/part-1",
                                          "/snap/part-2"};
  std::vector<json::Json> expected;
  for (const auto& p : paths) {
    auto records = dfs::ReadJsonLines(dfs, p);
    ASSERT_TRUE(records.ok());
    for (auto& r : *records) expected.push_back(std::move(r));
  }
  auto scanned = dfs::ScanJsonLinesDom(dfs, paths);
  ASSERT_TRUE(scanned.ok());
  std::vector<json::Json> got = Flatten(std::move(*scanned));
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], expected[i]);
}

TEST(ScanJsonLinesTest, ParallelScanPartitionsAndPreservesOrder) {
  MiniDfs dfs;
  std::string content;
  std::vector<int64_t> expected_ids;
  for (int64_t i = 0; i < 500; ++i) {
    content += "{\"id\":" + std::to_string(i) + "}\n";
    expected_ids.push_back(i);
  }
  ASSERT_TRUE(dfs.WriteFile("/snap/part-0", content).ok());
  ThreadPool pool(4);
  ScanOptions options;
  options.pool = &pool;
  options.min_range_bytes = 64;  // force several ranges despite the tiny file
  auto scanned = dfs::ScanJsonLinesDom(dfs, {"/snap/part-0"}, options);
  ASSERT_TRUE(scanned.ok());
  EXPECT_GT(scanned->size(), 1u) << "expected a multi-range split";
  std::vector<int64_t> got;
  for (const auto& part : *scanned) {
    for (const auto& doc : part) got.push_back(doc.Get("id").AsInt());
  }
  EXPECT_EQ(got, expected_ids);
}

TEST(ScanJsonLinesTest, MalformedLineVerdictMatchesReadJsonLines) {
  MiniDfs dfs;
  ASSERT_TRUE(
      dfs.WriteFile("/snap/part-0", "{\"id\":1}\n{broken\n{\"id\":2}\n").ok());
  auto sequential = dfs::ReadJsonLines(dfs, "/snap/part-0");
  ASSERT_FALSE(sequential.ok());
  ScanOptions options;
  options.min_range_bytes = 1;
  auto scanned = dfs::ScanJsonLinesDom(dfs, {"/snap/part-0"}, options);
  ASSERT_FALSE(scanned.ok());
  EXPECT_EQ(scanned.status().ToString(), sequential.status().ToString());
}

TEST(ScanJsonLinesTest, EarliestFailingLineWinsAcrossRanges) {
  MiniDfs dfs;
  // Two malformed lines; the earlier one (file order) must be reported even
  // when a later range finishes first.
  std::string content;
  for (int i = 0; i < 50; ++i) content += "{\"id\":" + std::to_string(i) + "}\n";
  content += "{bad-early\n";
  for (int i = 0; i < 50; ++i) content += "{\"id\":" + std::to_string(i) + "}\n";
  content += "{bad-late\n";
  ASSERT_TRUE(dfs.WriteFile("/snap/part-0", content).ok());
  ThreadPool pool(4);
  ScanOptions options;
  options.pool = &pool;
  options.min_range_bytes = 32;
  auto scanned = dfs::ScanJsonLinesDom(dfs, {"/snap/part-0"}, options);
  ASSERT_FALSE(scanned.ok());
  EXPECT_NE(scanned.status().ToString().find(":51:"), std::string::npos)
      << scanned.status().ToString();
}

TEST(ScanJsonLinesTest, EmptyInputsYieldOneEmptyPartition) {
  MiniDfs dfs;
  auto no_files = dfs::ScanJsonLinesDom(dfs, {});
  ASSERT_TRUE(no_files.ok());
  ASSERT_EQ(no_files->size(), 1u);
  EXPECT_TRUE((*no_files)[0].empty());

  ASSERT_TRUE(dfs.WriteFile("/snap/empty", "").ok());
  auto empty_file = dfs::ScanJsonLinesDom(dfs, {"/snap/empty"});
  ASSERT_TRUE(empty_file.ok());
  ASSERT_EQ(empty_file->size(), 1u);
  EXPECT_TRUE((*empty_file)[0].empty());
}

TEST(ScanJsonLinesTest, MissingFilePropagatesError) {
  MiniDfs dfs;
  auto scanned = dfs::ScanJsonLinesDom(dfs, {"/snap/nope"});
  EXPECT_FALSE(scanned.ok());
}

/// --- corruption-aware scans (salvage mode) --------------------------------

std::vector<int64_t> ScanIds(const std::vector<std::vector<json::Json>>& parts) {
  std::vector<int64_t> ids;
  for (const auto& part : parts) {
    for (const auto& doc : part) ids.push_back(doc.Get("id").AsInt());
  }
  return ids;
}

TEST(ScanSalvageTest, DropsTruncatedFinalLineAndCountsIt) {
  MiniDfs dfs;
  // A shard whose writer died mid-append: the last line is a torn prefix
  // ({"id":3 never got its closing brace or newline).
  ASSERT_TRUE(
      dfs.WriteFile("/snap/part-0", "{\"id\":1}\n{\"id\":2}\n{\"id\":3").ok());
  ScanOptions strict;
  auto failed = dfs::ScanJsonLinesDom(dfs, {"/snap/part-0"}, strict);
  EXPECT_FALSE(failed.ok());

  dfs::ScanReport report;
  ScanOptions salvage;
  salvage.salvage = true;
  salvage.report = &report;
  auto scanned = dfs::ScanJsonLinesDom(dfs, {"/snap/part-0"}, salvage);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  EXPECT_EQ(ScanIds(*scanned), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(report.files_scanned, 1u);
  EXPECT_EQ(report.raw_files, 1u);
  EXPECT_EQ(report.records_dropped, 1u);
  EXPECT_TRUE(report.quarantined_paths.empty());
}

TEST(ScanSalvageTest, SkipsLinesWithEmbeddedNulBytes) {
  MiniDfs dfs;
  std::string content = "{\"id\":1}\n";
  content += std::string("{\"id\":2,\"name\":\"a\0b\"}", 22);  // NULs inside
  content += "\n{\"id\":3}\n";
  ASSERT_TRUE(dfs.WriteFile("/snap/part-0", content).ok());
  dfs::ScanReport report;
  ScanOptions salvage;
  salvage.salvage = true;
  salvage.report = &report;
  auto scanned = dfs::ScanJsonLinesDom(dfs, {"/snap/part-0"}, salvage);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  // The intact neighbours of the garbage line survive byte-identically.
  EXPECT_EQ(ScanIds(*scanned), (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(report.records_dropped, 1u);
}

TEST(ScanSalvageTest, CorruptMiddleBlockQuarantinesInReportOnly) {
  MiniDfs dfs;
  // A properly committed shard whose payload rotted after commit: the
  // footer CRC no longer matches.
  std::string payload = "{\"id\":1}\n{\"id\":2}\n{\"id\":3}\n";
  ASSERT_TRUE(dfs::CommitFile(&dfs, "/snap/part-0", payload).ok());
  std::string raw = *dfs.ReadFile("/snap/part-0");
  raw[11] = 'X';  // damage the middle record: {"id":2} -> {"Xd":2}... no:
  // index 11 lands inside the second line; any flip breaks the CRC.
  ASSERT_TRUE(dfs.WriteFile("/snap/part-0", raw).ok());

  // Strict mode refuses the file outright.
  auto strict = dfs::ScanJsonLinesDom(dfs, {"/snap/part-0"});
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);

  // Salvage mode decodes what still parses and reports the file.
  dfs::ScanReport report;
  ScanOptions salvage;
  salvage.salvage = true;
  salvage.report = &report;
  auto scanned = dfs::ScanJsonLinesDom(dfs, {"/snap/part-0"}, salvage);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  std::vector<int64_t> ids = ScanIds(*scanned);
  EXPECT_EQ(ids.size() + report.records_dropped, 3u);
  ASSERT_EQ(report.quarantined_paths.size(), 1u);
  EXPECT_EQ(report.quarantined_paths[0], "/snap/part-0");
  EXPECT_EQ(report.footer_verified_files, 0u);
}

TEST(ScanSalvageTest, FooterVerifiedFilesAreCountedAndStayStrict) {
  MiniDfs dfs;
  {
    dfs::JsonLinesWriter writer(&dfs, "/snap/part-0");
    for (int i = 1; i <= 4; ++i) {
      json::Json r = json::Json::MakeObject();
      r.Set("id", i);
      ASSERT_TRUE(writer.Write(r).ok());
    }
    ASSERT_TRUE(writer.Flush().ok());
  }
  ASSERT_TRUE(dfs.WriteFile("/snap/part-1", "{\"id\":5}\n").ok());  // legacy
  dfs::ScanReport report;
  ScanOptions salvage;
  salvage.salvage = true;
  salvage.report = &report;
  auto scanned =
      dfs::ScanJsonLinesDom(dfs, {"/snap/part-0", "/snap/part-1"}, salvage);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  EXPECT_EQ(ScanIds(*scanned), (std::vector<int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(report.files_scanned, 2u);
  EXPECT_EQ(report.footer_verified_files, 1u);
  EXPECT_EQ(report.raw_files, 1u);
  EXPECT_EQ(report.records_dropped, 0u);
  EXPECT_GT(report.bytes_scanned, 0u);
}

/// Writes `n` startup records (long names, so block payloads have bytes to
/// damage) as a committed columnar file of `block_rows`-row blocks.
std::vector<StartupRecord> WriteColumnarStartups(MiniDfs* dfs,
                                                 const std::string& path,
                                                 size_t n, size_t block_rows) {
  std::vector<StartupRecord> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i].id = i + 1;
    rows[i].name = "padding-padding-padding-" + std::to_string(i);
    rows[i].follower_count = static_cast<int64_t>(i);
  }
  dfs::ColumnarWriteOptions options;
  options.block_rows = block_rows;
  dfs::ColumnarWriter<StartupRecord> writer(dfs, path, options);
  for (const StartupRecord& r : rows) writer.Add(r);
  EXPECT_TRUE(writer.Finish().ok());
  return rows;
}

TEST(ColumnarSalvageTest, BitFlippedBlockIsDroppedOthersSurvive) {
  MiniDfs dfs;
  const std::string path = "/snap/part-all.cfc";
  std::vector<StartupRecord> rows =
      WriteColumnarStartups(&dfs, path, /*n=*/20, /*block_rows=*/5);

  // Rot one byte inside the first block's dictionary (post-commit, so the
  // commit footer no longer verifies either).
  std::string raw = *dfs.ReadFile(path);
  const size_t pos = raw.find("padding-padding-padding-0");
  ASSERT_NE(pos, std::string::npos);
  raw[pos] ^= 0x20;
  ASSERT_TRUE(dfs.WriteFile(path, raw).ok());

  // Strict mode refuses the file outright (corrupt commit footer).
  auto strict = dfs::ScanColumnBlocks<StartupRecord>(dfs, {path});
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);

  // Salvage drops exactly the damaged block and keeps the other three.
  dfs::ScanReport report;
  ScanOptions salvage;
  salvage.salvage = true;
  salvage.report = &report;
  auto scanned = dfs::ScanColumnBlocks<StartupRecord>(dfs, {path}, salvage);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  std::vector<StartupRecord> got;
  for (auto& part : *scanned) {
    for (auto& r : part) got.push_back(std::move(r));
  }
  ASSERT_EQ(got.size(), 15u);
  EXPECT_EQ(got.front(), rows[5]) << "surviving blocks keep their records";
  EXPECT_EQ(got.back(), rows[19]);
  EXPECT_EQ(report.columnar_blocks_scanned, 4u);
  EXPECT_EQ(report.columnar_blocks_failed, 1u);
  EXPECT_EQ(report.records_dropped, 5u);
  ASSERT_EQ(report.quarantined_paths.size(), 1u);
  EXPECT_EQ(report.quarantined_paths[0], path);
}

TEST(ColumnarSalvageTest, TruncatedFileKeepsWalkedPrefix) {
  MiniDfs dfs;
  const std::string path = "/snap/part-all.cfc";
  std::vector<StartupRecord> rows =
      WriteColumnarStartups(&dfs, path, /*n=*/20, /*block_rows=*/5);

  // Torn tail: the file loses its footer and half of the last block — the
  // kind of damage a dying replica leaves behind.
  std::string raw = *dfs.ReadFile(path);
  ASSERT_TRUE(dfs.WriteFile(path, raw.substr(0, raw.size() - 60)).ok());

  auto strict = dfs::ScanColumnBlocks<StartupRecord>(dfs, {path});
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);

  dfs::ScanReport report;
  ScanOptions salvage;
  salvage.salvage = true;
  salvage.report = &report;
  auto scanned = dfs::ScanColumnBlocks<StartupRecord>(dfs, {path}, salvage);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  std::vector<StartupRecord> got;
  for (auto& part : *scanned) {
    for (auto& r : part) got.push_back(std::move(r));
  }
  // Every fully-framed block before the tear decodes; the torn tail block is
  // gone. The exact count depends on where the tear lands, but the prefix
  // property must hold.
  ASSERT_GT(got.size(), 0u);
  ASSERT_LT(got.size(), rows.size());
  ASSERT_EQ(got.size() % 5, 0u) << "whole blocks only";
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], rows[i]);
  EXPECT_EQ(report.columnar_blocks_scanned, got.size() / 5);
  EXPECT_EQ(report.columnar_blocks_failed, 0u);
}

TEST(ColumnarSalvageTest, SnapshotLoadFallsBackToJsonOnColumnarRot) {
  MiniDfs dfs;
  const std::string dir = "/snap/facebook/";
  std::string shard;
  for (int i = 0; i < 12; ++i) {
    shard += "{\"angellist_id\":" + std::to_string(i + 1) +
             ",\"fan_count\":" + std::to_string(i * 3) + "}\n";
  }
  ASSERT_TRUE(dfs::CommitFile(&dfs, dir + "part-0.jsonl", shard).ok());
  ASSERT_TRUE(
      core::CompactSnapshotDir<FacebookRecord>(&dfs, dir, nullptr, 4).ok());

  // Rot the columnar file; the JSON shards are still intact.
  const std::string col = core::ColumnarPathFor(dir);
  std::string raw = *dfs.ReadFile(col);
  raw[raw.size() / 2] ^= 0x01;
  ASSERT_TRUE(dfs.WriteFile(col, raw).ok());

  // Strict load surfaces the damage...
  auto strict = core::ScanSnapshotRecords<FacebookRecord>(
      dfs, dir, nullptr, /*salvage=*/false, nullptr);
  ASSERT_FALSE(strict.ok());

  // ...salvage load abandons the rotted columnar file wholesale and returns
  // the complete stream from JSON (not a partial columnar decode).
  dfs::ScanReport report;
  auto parts = core::ScanSnapshotRecords<FacebookRecord>(
      dfs, dir, nullptr, /*salvage=*/true, &report);
  ASSERT_TRUE(parts.ok()) << parts.status();
  size_t total = 0;
  for (const auto& p : *parts) total += p.size();
  EXPECT_EQ(total, 12u);
  EXPECT_EQ(report.records_dropped, 0u);
}

/// --- streaming record decoders vs FromJson -------------------------------

template <typename T>
T DecodeOne(std::string_view line) {
  json::JsonReader reader(line);
  auto decoded = T::Decode(reader);
  EXPECT_TRUE(decoded.ok()) << line << ": " << decoded.status().ToString();
  EXPECT_TRUE(reader.Finish().ok()) << line;
  return decoded.ok() ? *decoded : T{};
}

template <typename T>
T DomOne(std::string_view line) {
  auto parsed = json::Parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return T::FromJson(parsed.ok() ? *parsed : json::Json());
}

void ExpectEq(const StartupRecord& a, const StartupRecord& b,
              std::string_view doc) {
  EXPECT_EQ(a.id, b.id) << doc;
  EXPECT_EQ(a.name, b.name) << doc;
  EXPECT_EQ(a.has_twitter_url, b.has_twitter_url) << doc;
  EXPECT_EQ(a.has_facebook_url, b.has_facebook_url) << doc;
  EXPECT_EQ(a.has_crunchbase_url, b.has_crunchbase_url) << doc;
  EXPECT_EQ(a.has_video, b.has_video) << doc;
  EXPECT_EQ(a.fundraising, b.fundraising) << doc;
  EXPECT_EQ(a.follower_count, b.follower_count) << doc;
}

void ExpectEq(const UserRecord& a, const UserRecord& b, std::string_view doc) {
  EXPECT_EQ(a.id, b.id) << doc;
  EXPECT_EQ(a.is_investor, b.is_investor) << doc;
  EXPECT_EQ(a.is_founder, b.is_founder) << doc;
  EXPECT_EQ(a.is_employee, b.is_employee) << doc;
  EXPECT_EQ(a.investment_company_ids, b.investment_company_ids) << doc;
  EXPECT_EQ(a.following_startup_count, b.following_startup_count) << doc;
  EXPECT_EQ(a.following_user_count, b.following_user_count) << doc;
}

void ExpectEq(const CrunchBaseRecord& a, const CrunchBaseRecord& b,
              std::string_view doc) {
  EXPECT_EQ(a.angellist_id, b.angellist_id) << doc;
  EXPECT_DOUBLE_EQ(a.total_funding_usd, b.total_funding_usd) << doc;
  EXPECT_EQ(a.num_rounds, b.num_rounds) << doc;
  EXPECT_EQ(a.round_investor_ids, b.round_investor_ids) << doc;
}

void ExpectEq(const FacebookRecord& a, const FacebookRecord& b,
              std::string_view doc) {
  EXPECT_EQ(a.angellist_id, b.angellist_id) << doc;
  EXPECT_EQ(a.fan_count, b.fan_count) << doc;
}

void ExpectEq(const TwitterRecord& a, const TwitterRecord& b,
              std::string_view doc) {
  EXPECT_EQ(a.angellist_id, b.angellist_id) << doc;
  EXPECT_EQ(a.statuses_count, b.statuses_count) << doc;
  EXPECT_EQ(a.followers_count, b.followers_count) << doc;
  EXPECT_EQ(a.followers_count_null, b.followers_count_null) << doc;
}

template <typename T>
void ExpectDecodeMatchesFromJson(const std::vector<const char*>& docs) {
  for (const char* doc : docs) {
    ExpectEq(DecodeOne<T>(doc), DomOne<T>(doc), doc);
  }
}

TEST(RecordDecodeDifferentialTest, Startup) {
  ExpectDecodeMatchesFromJson<StartupRecord>({
      "{}",
      "{\"id\":7,\"name\":\"Acme\",\"twitter_url\":\"http://t\","
      "\"facebook_url\":\"\",\"crunchbase_url\":\"http://c\","
      "\"video_url\":\"v\",\"fundraising\":true,\"follower_count\":12}",
      "{\"id\":7.9,\"name\":42,\"twitter_url\":null,\"fundraising\":\"yes\"}",
      "{\"follower_count\":\"many\",\"video_url\":false}",
      "{\"id\":1,\"id\":2}",                      // dup key: last wins
      "{\"twitter_url\":\"x\",\"twitter_url\":\"\"}",
      "{\"extra\":{\"nested\":[1,2]},\"id\":5}",  // unknown composite skipped
      "{\"name\":\"esc\\n\\u00e9\"}",
  });
}

TEST(RecordDecodeDifferentialTest, User) {
  ExpectDecodeMatchesFromJson<UserRecord>({
      "{}",
      "{\"id\":3,\"roles\":[\"investor\",\"founder\"],"
      "\"investment_company_ids\":[1,2,3],"
      "\"following_startup_count\":4,\"following_user_count\":5}",
      "{\"roles\":[\"employee\",\"other\"],\"roles\":[\"founder\"]}",
      "{\"roles\":\"investor\"}",                 // non-array roles: no flags
      "{\"roles\":[null,42,\"investor\"]}",
      "{\"investment_company_ids\":[1],\"investment_company_ids\":[2,3]}",
      "{\"investment_company_ids\":{\"a\":1}}",   // non-array: empty
      "{\"id\":\"x\",\"following_user_count\":2.7}",
  });
}

TEST(RecordDecodeDifferentialTest, CrunchBase) {
  ExpectDecodeMatchesFromJson<CrunchBaseRecord>({
      "{}",
      "{\"angellist_id\":9,\"total_funding_usd\":1.5e6,"
      "\"funding_rounds\":[{\"investor_ids\":[1,2]},{\"investor_ids\":[3]}]}",
      "{\"funding_rounds\":[]}",
      "{\"funding_rounds\":[{},{\"other\":1},{\"investor_ids\":\"x\"}]}",
      "{\"funding_rounds\":{\"a\":1,\"b\":2}}",   // object: size = members
      "{\"funding_rounds\":{\"a\":1,\"a\":2}}",   // dup keys collapse
      "{\"funding_rounds\":42}",                  // scalar: zero rounds
      "{\"funding_rounds\":[{\"investor_ids\":[1],\"investor_ids\":[2,3]}]}",
      "{\"funding_rounds\":[{\"investor_ids\":[1]}],"
      "\"funding_rounds\":[{\"investor_ids\":[9]}]}",
      "{\"total_funding_usd\":7}",                // int coerces to double
  });
}

TEST(RecordDecodeDifferentialTest, Facebook) {
  ExpectDecodeMatchesFromJson<FacebookRecord>({
      "{}",
      "{\"angellist_id\":4,\"fan_count\":100}",
      "{\"fan_count\":\"lots\",\"angellist_id\":1.2}",
  });
}

TEST(RecordDecodeDifferentialTest, Twitter) {
  ExpectDecodeMatchesFromJson<TwitterRecord>({
      "{}",                                       // missing -> null verdict
      "{\"angellist_id\":2,\"statuses_count\":10,\"followers_count\":20}",
      "{\"followers_count\":null}",
      "{\"followers_count\":\"n/a\"}",            // non-null, coerces to 0
      "{\"followers_count\":null,\"followers_count\":5}",
      "{\"followers_count\":5,\"followers_count\":null}",
  });
}

TEST(RecordDecodeDifferentialTest, MalformedLineFailsBothPaths) {
  const char* doc = "{\"id\":1,";
  auto parsed = json::Parse(doc);
  ASSERT_FALSE(parsed.ok());
  json::JsonReader reader(doc);
  auto decoded = StartupRecord::Decode(reader);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().ToString(), parsed.status().ToString());
}

/// --- end-to-end: platform loaders on a crawled world ---------------------

TEST(PlatformIngestTest, TypedLoadersMatchDomPipeline) {
  core::ExploratoryPlatform::Options options;
  options.world.scale = 0.01;
  options.analytics_parallelism = 4;
  core::ExploratoryPlatform platform(options);
  ASSERT_TRUE(platform.CollectData().ok());
  auto inputs = platform.LoadInputs();
  ASSERT_TRUE(inputs.ok());

  auto check_dir = [&](const std::string& dir, auto tag, const auto& typed) {
    using T = decltype(tag);
    auto docs = platform.LoadSnapshotDataset(dir);
    ASSERT_TRUE(docs.ok());
    std::vector<T> dom =
        docs->Map([](const json::Json& j) { return T::FromJson(j); }).Collect();
    ASSERT_EQ(typed.size(), dom.size()) << dir;
    for (size_t i = 0; i < dom.size(); ++i) ExpectEq(typed[i], dom[i], dir);
  };
  check_dir(platform.crawler().StartupSnapshotDir(), StartupRecord{},
            inputs->startups);
  check_dir(platform.crawler().UserSnapshotDir(), UserRecord{}, inputs->users);
  check_dir(platform.crawler().CrunchBaseSnapshotDir(), CrunchBaseRecord{},
            inputs->crunchbase);
  check_dir(platform.crawler().FacebookSnapshotDir(), FacebookRecord{},
            inputs->facebook);
  check_dir(platform.crawler().TwitterSnapshotDir(), TwitterRecord{},
            inputs->twitter);
  EXPECT_FALSE(inputs->startups.empty());
  EXPECT_FALSE(inputs->users.empty());
}

}  // namespace
}  // namespace cfnet
