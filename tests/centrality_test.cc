#include "graph/centrality.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace cfnet::graph {
namespace {

/// Path graph 0-1-2-3-4.
WeightedGraph Path5() {
  return WeightedGraph::FromEdges(
      5, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}});
}

/// Star: center 0, leaves 1..4.
WeightedGraph Star5() {
  return WeightedGraph::FromEdges(
      5, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}, {0, 4, 1.0}});
}

TEST(ConnectedComponentsTest, CountsAndLabels) {
  WeightedGraph g = WeightedGraph::FromEdges(
      6, {{0, 1, 1.0}, {1, 2, 1.0}, {3, 4, 1.0}});  // node 5 isolated
  size_t num = 0;
  std::vector<int> comp = ConnectedComponents(g, &num);
  EXPECT_EQ(num, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
  EXPECT_EQ(LargestComponentSize(g), 3u);
}

TEST(DegreeCentralityTest, StarCenterDominates) {
  std::vector<double> c = DegreeCentrality(Star5());
  EXPECT_DOUBLE_EQ(c[0], 1.0);       // 4/(5-1)
  EXPECT_DOUBLE_EQ(c[1], 0.25);
}

TEST(HarmonicCentralityTest, PathCenterHighest) {
  std::vector<double> c = HarmonicCentrality(Path5());
  // Node 2: distances 2,1,1,2 -> (1/2+1+1+1/2)/4 = 0.75.
  EXPECT_NEAR(c[2], 0.75, 1e-12);
  // Node 0: distances 1,2,3,4 -> (1+1/2+1/3+1/4)/4.
  EXPECT_NEAR(c[0], (1 + 0.5 + 1.0 / 3 + 0.25) / 4, 1e-12);
  EXPECT_GT(c[2], c[1]);
  EXPECT_GT(c[1], c[0]);
}

TEST(HarmonicCentralityTest, SampledApproximatesExact) {
  // Two joined stars: a mid-sized graph where sampling makes sense.
  std::vector<std::tuple<uint32_t, uint32_t, double>> edges;
  for (uint32_t i = 1; i <= 30; ++i) edges.emplace_back(0, i, 1.0);
  for (uint32_t i = 32; i <= 61; ++i) edges.emplace_back(31, i, 1.0);
  edges.emplace_back(0, 31, 1.0);
  WeightedGraph g = WeightedGraph::FromEdges(62, edges);
  auto exact = HarmonicCentrality(g);
  auto sampled = HarmonicCentrality(g, 30, 7);
  // Hubs stay on top under sampling.
  EXPECT_GT(sampled[0], sampled[5]);
  EXPECT_GT(sampled[31], sampled[40]);
  // Estimates land near the exact values.
  EXPECT_NEAR(sampled[0], exact[0], exact[0] * 0.35);
}

TEST(BetweennessCentralityTest, PathMiddleDominates) {
  std::vector<double> c = BetweennessCentrality(Path5());
  // Node 2 lies on all 4 pairs crossing it: (0,3),(0,4),(1,3),(1,4)
  // and (0,3)... exact count: pairs through 2 = {0,1}x{3,4} = 4 of 6 pairs.
  EXPECT_NEAR(c[2], 4.0 / 6, 1e-12);
  EXPECT_NEAR(c[1], 3.0 / 6, 1e-12);  // pairs {0}x{2,3,4}
  EXPECT_NEAR(c[0], 0.0, 1e-12);
  EXPECT_NEAR(c[4], 0.0, 1e-12);
}

TEST(BetweennessCentralityTest, StarCenterTakesAll) {
  std::vector<double> c = BetweennessCentrality(Star5());
  EXPECT_NEAR(c[0], 1.0, 1e-12);  // all 6 leaf pairs route through center
  for (int v = 1; v < 5; ++v) EXPECT_NEAR(c[v], 0.0, 1e-12);
}

TEST(BetweennessCentralityTest, TieSplitting) {
  // Square 0-1-2-3-0: two shortest paths between opposite corners.
  WeightedGraph g = WeightedGraph::FromEdges(
      4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 0, 1.0}});
  std::vector<double> c = BetweennessCentrality(g);
  // Each node carries half of one opposite-pair path: 0.5/3 pairs... by
  // symmetry all four must be equal.
  for (int v = 1; v < 4; ++v) EXPECT_NEAR(c[v], c[0], 1e-12);
  EXPECT_GT(c[0], 0);
}

TEST(CoreNumbersTest, CliquePlusTail) {
  // Triangle 0-1-2 (core 2) with a tail 2-3-4 (core 1) and isolated 5.
  WeightedGraph g = WeightedGraph::FromEdges(
      6,
      {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}});
  std::vector<int> core = CoreNumbers(g);
  EXPECT_EQ(core[0], 2);
  EXPECT_EQ(core[1], 2);
  EXPECT_EQ(core[2], 2);
  EXPECT_EQ(core[3], 1);
  EXPECT_EQ(core[4], 1);
  EXPECT_EQ(core[5], 0);
}

TEST(CoreNumbersTest, CompleteGraph) {
  std::vector<std::tuple<uint32_t, uint32_t, double>> edges;
  for (uint32_t i = 0; i < 6; ++i) {
    for (uint32_t j = i + 1; j < 6; ++j) edges.emplace_back(i, j, 1.0);
  }
  std::vector<int> core = CoreNumbers(WeightedGraph::FromEdges(6, edges));
  for (int c : core) EXPECT_EQ(c, 5);
}

TEST(PageRankTest, SumsToOneAndRanksHubs) {
  WeightedGraph g = Star5();
  std::vector<double> pr = PageRank(g);
  double sum = 0;
  for (double x : pr) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(pr[0], pr[1] * 2);  // hub clearly dominates
  for (int v = 2; v < 5; ++v) EXPECT_NEAR(pr[v], pr[1], 1e-9);
}

TEST(PageRankTest, DanglingMassRedistributed) {
  // One edge 0-1 plus isolated nodes 2,3 (dangling in the weighted sense).
  WeightedGraph g = WeightedGraph::FromEdges(4, {{0, 1, 1.0}});
  std::vector<double> pr = PageRank(g);
  double sum = 0;
  for (double x : pr) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(pr[0], pr[2]);
  EXPECT_NEAR(pr[2], pr[3], 1e-9);
  EXPECT_GT(pr[2], 0.0);
}

TEST(CentralityTest, EmptyAndTinyGraphs) {
  WeightedGraph empty;
  EXPECT_TRUE(DegreeCentrality(empty).empty());
  EXPECT_TRUE(HarmonicCentrality(empty).empty());
  EXPECT_TRUE(BetweennessCentrality(empty).empty());
  EXPECT_TRUE(CoreNumbers(empty).empty());
  size_t n = 0;
  EXPECT_TRUE(ConnectedComponents(empty, &n).empty());
  EXPECT_EQ(n, 0u);

  WeightedGraph one = WeightedGraph::FromEdges(1, {});
  EXPECT_EQ(DegreeCentrality(one).size(), 1u);
  EXPECT_EQ(BetweennessCentrality(one).size(), 1u);
}

}  // namespace
}  // namespace cfnet::graph
