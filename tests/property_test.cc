// Property-based tests: randomized inputs checked against invariants or a
// trivially-correct reference implementation.

#include <algorithm>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "dataflow/dataset.h"
#include "dfs/dfs.h"
#include "json/json.h"
#include "stats/stats.h"
#include "util/rng.h"

namespace cfnet {
namespace {

// --- JSON: random documents round-trip exactly -------------------------------

json::Json RandomJson(Rng& rng, int depth) {
  double u = rng.NextDouble();
  if (depth >= 4 || u < 0.45) {
    // Scalar.
    switch (rng.NextUint64(5)) {
      case 0:
        return json::Json();
      case 1:
        return json::Json(rng.Bernoulli(0.5));
      case 2:
        return json::Json(rng.UniformInt(-1000000000000ll, 1000000000000ll));
      case 3:
        return json::Json(rng.Normal(0, 1e6));
      default: {
        std::string s;
        size_t len = rng.NextUint64(20);
        for (size_t i = 0; i < len; ++i) {
          // Mix printable ASCII with characters needing escapes.
          const char* alphabet =
              "abc XYZ123\"\\\n\t/\x01\x1f~";
          s.push_back(alphabet[rng.NextUint64(17)]);
        }
        return json::Json(std::move(s));
      }
    }
  }
  if (u < 0.72) {
    json::Json arr = json::Json::MakeArray();
    size_t n = rng.NextUint64(5);
    for (size_t i = 0; i < n; ++i) arr.Append(RandomJson(rng, depth + 1));
    return arr;
  }
  json::Json obj = json::Json::MakeObject();
  size_t n = rng.NextUint64(5);
  for (size_t i = 0; i < n; ++i) {
    obj.Set("k" + std::to_string(rng.NextUint64(8)), RandomJson(rng, depth + 1));
  }
  return obj;
}

class JsonRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripProperty, DumpParseIsIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    json::Json doc = RandomJson(rng, 0);
    std::string text = doc.Dump();
    auto reparsed = json::Parse(text);
    ASSERT_TRUE(reparsed.ok()) << text << " -> " << reparsed.status();
    // NaN/Inf doubles dump as null, so compare the *re-dump* instead of the
    // original when doubles are involved; re-dump must be a fixed point.
    EXPECT_EQ(reparsed->Dump(), text);
  }
}

TEST_P(JsonRoundTripProperty, TruncationsNeverCrashAndUsuallyFail) {
  Rng rng(GetParam() ^ 0x1234);
  for (int trial = 0; trial < 50; ++trial) {
    std::string text = RandomJson(rng, 0).Dump();
    if (text.size() < 2) continue;
    size_t cut = 1 + rng.NextUint64(text.size() - 1);
    auto result = json::Parse(text.substr(0, cut));
    // Must terminate without crashing; truncated containers must fail.
    if (result.ok()) {
      // A truncated scalar can still parse (e.g. "12" of "123"); verify it
      // at least re-dumps cleanly.
      EXPECT_FALSE(result->Dump().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- MiniDFS: random op sequences against a map reference ---------------------

class DfsModelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DfsModelProperty, MatchesReferenceModel) {
  Rng rng(GetParam());
  dfs::DfsConfig config;
  config.num_datanodes = 5;
  config.block_size = 1 + rng.NextUint64(64);
  config.replication = 3;
  dfs::MiniDfs fs(config);
  std::map<std::string, std::string> reference;

  auto random_path = [&]() {
    return "/p/f" + std::to_string(rng.NextUint64(8));
  };
  auto random_data = [&]() {
    return std::string(rng.NextUint64(200),
                       static_cast<char>('a' + rng.NextUint64(26)));
  };

  int dead_nodes = 0;
  for (int step = 0; step < 400; ++step) {
    switch (rng.NextUint64(8)) {
      case 0: {  // write
        std::string p = random_path();
        std::string d = random_data();
        ASSERT_TRUE(fs.WriteFile(p, d).ok());
        reference[p] = d;
        break;
      }
      case 1: {  // append
        std::string p = random_path();
        std::string d = random_data();
        ASSERT_TRUE(fs.Append(p, d).ok());
        reference[p] += d;
        break;
      }
      case 2: {  // delete
        std::string p = random_path();
        Status s = fs.Delete(p);
        EXPECT_EQ(s.ok(), reference.erase(p) > 0);
        break;
      }
      case 3: {  // kill a node (keep a quorum alive for replication=3)
        if (dead_nodes < 2) {
          int node = static_cast<int>(rng.NextUint64(5));
          if (fs.IsDataNodeAlive(node)) {
            ASSERT_TRUE(fs.KillDataNode(node).ok());
            ++dead_nodes;
          }
        }
        break;
      }
      case 4: {  // revive all
        for (int node = 0; node < 5; ++node) fs.ReviveDataNode(node).ok();
        dead_nodes = 0;
        break;
      }
      case 5:
        fs.RunReplicationMonitor();
        break;
      case 6:
        EXPECT_EQ(fs.ScrubBlocks(), 0u);  // nothing corrupts itself
        break;
      default: {  // read
        std::string p = random_path();
        auto content = fs.ReadFile(p);
        auto it = reference.find(p);
        if (it == reference.end()) {
          EXPECT_FALSE(content.ok());
        } else {
          ASSERT_TRUE(content.ok()) << p;
          EXPECT_EQ(*content, it->second);
        }
      }
    }
  }
  // Final full verification.
  for (const auto& [p, d] : reference) {
    auto content = fs.ReadFile(p);
    ASSERT_TRUE(content.ok()) << p;
    EXPECT_EQ(*content, d);
  }
  auto listed = fs.List("/p/");
  EXPECT_EQ(listed.size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsModelProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- dataflow: randomized pipelines match serial evaluation -------------------

class DataflowPipelineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DataflowPipelineProperty, MatchesSerialReference) {
  Rng rng(GetParam());
  auto ctx = std::make_shared<dataflow::ExecutionContext>(4);

  std::vector<int64_t> data;
  size_t n = 500 + rng.NextUint64(3000);
  for (size_t i = 0; i < n; ++i) data.push_back(rng.UniformInt(-1000, 1000));

  auto ds = dataflow::Dataset<int64_t>::FromVector(
      ctx, data, 1 + rng.NextUint64(12));
  std::vector<int64_t> ref = data;

  int num_ops = 2 + static_cast<int>(rng.NextUint64(4));
  for (int op = 0; op < num_ops; ++op) {
    switch (rng.NextUint64(4)) {
      case 0: {
        int64_t mul = rng.UniformInt(2, 5);
        ds = ds.Map([mul](const int64_t& x) { return x * mul; });
        for (auto& x : ref) x *= mul;
        break;
      }
      case 1: {
        int64_t mod = rng.UniformInt(2, 7);
        ds = ds.Filter([mod](const int64_t& x) { return x % mod == 0; });
        std::vector<int64_t> kept;
        for (auto x : ref) {
          if (x % mod == 0) kept.push_back(x);
        }
        ref = kept;
        break;
      }
      case 2: {
        ds = ds.FlatMap([](const int64_t& x) {
          return std::vector<int64_t>{x, -x};
        });
        std::vector<int64_t> expanded;
        for (auto x : ref) {
          expanded.push_back(x);
          expanded.push_back(-x);
        }
        ref = expanded;
        break;
      }
      default: {
        ds = ds.Repartition(1 + rng.NextUint64(8));
        break;  // reference unchanged (element-preserving)
      }
    }
  }
  auto result = ds.Collect();
  std::sort(result.begin(), result.end());
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(result, ref);

  // Aggregations agree with the reference too.
  int64_t ds_sum = ds.Reduce([](int64_t a, int64_t b) { return a + b; },
                             static_cast<int64_t>(0));
  int64_t ref_sum = 0;
  for (auto x : ref) ref_sum += x;
  EXPECT_EQ(ds_sum, ref_sum);
  EXPECT_EQ(ds.Count(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataflowPipelineProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// --- stats: ECDF is a valid distribution function ------------------------------

class EcdfProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EcdfProperty, MonotoneRightContinuousWithValidRange) {
  Rng rng(GetParam());
  std::vector<double> samples;
  size_t n = 1 + rng.NextUint64(2000);
  for (size_t i = 0; i < n; ++i) {
    samples.push_back(rng.LogNormal(0, 2) * (rng.Bernoulli(0.5) ? 1 : -1));
  }
  stats::Ecdf f(samples);
  double prev = -1;
  for (double x = -100; x <= 100; x += 2.5) {
    double p = f(x);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_GE(p, prev);  // monotone non-decreasing
    prev = p;
  }
  // Quantile/CDF near-inverse: F(Q(q)) >= q.
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_GE(f(f.Quantile(q)) + 1e-12, q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfProperty, ::testing::Values(9, 19, 29, 39));

}  // namespace
}  // namespace cfnet
