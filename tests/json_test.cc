#include "json/json.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace cfnet::json {
namespace {

TEST(JsonValueTest, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.Dump(), "null");
}

TEST(JsonValueTest, Scalars) {
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(int64_t{-7}).Dump(), "-7");
  EXPECT_EQ(Json(2.5).Dump(), "2.5");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(JsonValueTest, TypedAccessorsWithFallbacks) {
  Json j(42);
  EXPECT_EQ(j.AsInt(), 42);
  EXPECT_DOUBLE_EQ(j.AsDouble(), 42.0);
  EXPECT_EQ(j.AsString(), "");     // wrong type -> neutral default
  EXPECT_FALSE(j.AsBool());
  EXPECT_EQ(Json("x").AsInt(9), 9);
  EXPECT_EQ(Json(2.9).AsInt(), 2);  // double truncates
}

TEST(JsonValueTest, ObjectSetGetPreservesOrder) {
  Json j = Json::MakeObject();
  j.Set("b", 1);
  j.Set("a", 2);
  j.Set("b", 3);  // overwrite in place
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.Has("a"));
  EXPECT_FALSE(j.Has("c"));
  EXPECT_EQ(j.Get("b").AsInt(), 3);
  EXPECT_TRUE(j.Get("missing").is_null());
  EXPECT_EQ(j.Dump(), "{\"b\":3,\"a\":2}");
}

TEST(JsonValueTest, ArrayAppendAndAt) {
  Json j = Json::MakeArray();
  j.Append(1);
  j.Append("two");
  j.Append(Json::MakeObject());
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(j.at(0).AsInt(), 1);
  EXPECT_EQ(j.at(1).AsString(), "two");
  EXPECT_TRUE(j.at(99).is_null());
}

TEST(JsonValueTest, NullPromotesToContainerOnMutation) {
  Json obj;
  obj.Set("k", 1);
  EXPECT_TRUE(obj.is_object());
  Json arr;
  arr.Append(1);
  EXPECT_TRUE(arr.is_array());
}

TEST(JsonValueTest, EqualityIncludingCrossNumeric) {
  EXPECT_EQ(Json(1), Json(1.0));
  EXPECT_FALSE(Json(1) == Json(2));
  EXPECT_EQ(Json("a"), Json("a"));
  Json a = Json::MakeObject();
  a.Set("x", 1);
  Json b = Json::MakeObject();
  b.Set("x", 1);
  EXPECT_EQ(a, b);
}

TEST(JsonParseTest, RoundTripsComplexDocument) {
  const char* doc = R"({
    "id": 744036,
    "name": "Planetary Resources",
    "raising": true,
    "score": -1.25e2,
    "tags": ["space", "mining"],
    "nested": {"a": [1, 2, {"b": null}]}
  })";
  auto parsed = Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Json& j = *parsed;
  EXPECT_EQ(j.Get("id").AsInt(), 744036);
  EXPECT_EQ(j.Get("name").AsString(), "Planetary Resources");
  EXPECT_TRUE(j.Get("raising").AsBool());
  EXPECT_DOUBLE_EQ(j.Get("score").AsDouble(), -125.0);
  EXPECT_EQ(j.Get("tags").size(), 2u);
  EXPECT_TRUE(j.Get("nested").Get("a").at(2).Get("b").is_null());

  // Dump -> reparse -> equal.
  auto reparsed = Parse(j.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, j);
}

TEST(JsonParseTest, StringEscapes) {
  auto parsed = Parse(R"("line\nbreak \"quoted\" back\\slash \t tab A")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "line\nbreak \"quoted\" back\\slash \t tab A");
}

TEST(JsonParseTest, UnicodeEscapesAndSurrogates) {
  auto bmp = Parse(R"("\u00e9")");  // é
  ASSERT_TRUE(bmp.ok());
  EXPECT_EQ(bmp->AsString(), "\xc3\xa9");
  auto astral = Parse(R"("\ud83d\ude00")");  // U+1F600 via surrogate pair
  ASSERT_TRUE(astral.ok());
  EXPECT_EQ(astral->AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, EscapeRoundTripThroughDump) {
  Json j("tab\t\"quote\" \x01 control");
  auto reparsed = Parse(j.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->AsString(), j.AsString());
}

TEST(JsonParseTest, IntegerPrecisionPreserved) {
  auto parsed = Parse("9007199254740993");  // 2^53 + 1: doubles can't hold it
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_int());
  EXPECT_EQ(parsed->AsInt(), 9007199254740993ll);
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto parsed = Parse("  \n\t { \"a\" :  [ 1 , 2 ]  }  \r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("a").size(), 2u);
}

class JsonInvalidTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonInvalidTest, RejectsMalformedInput) {
  auto parsed = Parse(GetParam());
  EXPECT_FALSE(parsed.ok()) << "should reject: " << GetParam();
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonInvalidTest,
    ::testing::Values("", "{", "}", "[1,]", "{\"a\":}", "{\"a\" 1}",
                      "{a:1}", "tru", "nul", "01x", "1.e5", "1.", "--3",
                      "\"unterminated", "\"bad\\escape\\q\"", "[1] trailing",
                      "{\"a\":1,}", "+5", "\"\\u12\"", "[1 2]"));

TEST(JsonParseTest, DeepNestingBounded) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  auto parsed = Parse(deep);
  EXPECT_FALSE(parsed.ok());  // beyond the depth limit

  std::string ok(100, '[');
  ok += std::string(100, ']');
  EXPECT_TRUE(Parse(ok).ok());
}

TEST(JsonDumpTest, PrettyPrinting) {
  Json j = Json::MakeObject();
  j.Set("a", 1);
  Json arr = Json::MakeArray();
  arr.Append(2);
  j.Set("b", arr);
  std::string pretty = j.Dump(2);
  EXPECT_NE(pretty.find("{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}"),
            std::string::npos);
}

TEST(JsonDumpTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(), "null");
  EXPECT_EQ(Json(std::nan("")).Dump(), "null");
}

}  // namespace
}  // namespace cfnet::json
