#include "synth/world.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace cfnet::synth {
namespace {

WorldConfig TestConfig(double scale = 0.02) {
  WorldConfig config;
  config.scale = scale;
  config.seed = 42;
  return config;
}

class WorldFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(World::Generate(TestConfig()));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static const World& world() { return *world_; }

 private:
  static World* world_;
};

World* WorldFixture::world_ = nullptr;

TEST_F(WorldFixture, PopulationCountsMatchScale) {
  WorldStats s = world().ComputeStats();
  EXPECT_EQ(s.num_companies, static_cast<int64_t>(744036 * 0.02));
  EXPECT_EQ(s.num_users, static_cast<int64_t>(1109441 * 0.02));
}

TEST_F(WorldFixture, SocialPresenceFractionsCalibrated) {
  WorldStats s = world().ComputeStats();
  double n = static_cast<double>(s.num_companies);
  EXPECT_NEAR(s.companies_with_facebook / n, 0.0507, 0.006);
  EXPECT_NEAR(s.companies_with_twitter / n, 0.0948, 0.008);
  EXPECT_NEAR(s.companies_with_both / n, 0.0437, 0.006);
  EXPECT_NEAR(s.companies_with_video / n, 0.0488, 0.006);
}

TEST_F(WorldFixture, RoleFractionsCalibrated) {
  WorldStats s = world().ComputeStats();
  double n = static_cast<double>(s.num_users);
  EXPECT_NEAR(s.num_investors / n, 0.043, 0.005);
  EXPECT_NEAR(s.num_founders / n, 0.183, 0.01);
  EXPECT_NEAR(s.num_employees / n, 0.442, 0.012);
}

TEST_F(WorldFixture, FundingRateAndCrunchBaseConsistent) {
  WorldStats s = world().ComputeStats();
  double n = static_cast<double>(s.num_companies);
  // Overall funding success ~1.37% (10,156 / 744,036 in the paper).
  EXPECT_NEAR(s.companies_funded / n, 0.0137, 0.004);
  // CrunchBase profiles exist exactly for funded companies.
  EXPECT_EQ(s.companies_funded, s.companies_with_crunchbase);
}

TEST_F(WorldFixture, NoSocialSuccessRateNearPaper) {
  int64_t none = 0;
  int64_t none_funded = 0;
  for (const auto& c : world().companies()) {
    if (c.social == SocialCell::kNone) {
      ++none;
      if (c.raised_funding) ++none_funded;
    }
  }
  EXPECT_NEAR(100.0 * none_funded / none, 0.4, 0.2);
}

TEST_F(WorldFixture, InvestmentDegreesCalibrated) {
  std::vector<size_t> degrees;
  for (const auto& u : world().users()) {
    if (!u.investments.empty()) degrees.push_back(u.investments.size());
  }
  ASSERT_GT(degrees.size(), 100u);
  double mean = 0;
  for (size_t d : degrees) mean += static_cast<double>(d);
  mean /= static_cast<double>(degrees.size());
  EXPECT_NEAR(mean, 3.3, 0.8);
  std::sort(degrees.begin(), degrees.end());
  EXPECT_EQ(degrees[degrees.size() / 2], 1u);  // median 1
  EXPECT_GT(degrees.back(), 50u);              // long tail
}

TEST_F(WorldFixture, InvestmentsSortedUniqueAndValid) {
  for (const auto& u : world().users()) {
    ASSERT_EQ(u.investments.size(), u.investment_on_angellist.size());
    for (size_t i = 0; i < u.investments.size(); ++i) {
      CompanyId c = u.investments[i];
      ASSERT_GE(c, 1u);
      ASSERT_LE(c, world().companies().size());
      if (i > 0) ASSERT_LT(u.investments[i - 1], c);
    }
    if (!u.investments.empty()) {
      EXPECT_EQ(u.role, UserRole::kInvestor);
    }
  }
}

TEST_F(WorldFixture, HiddenAngelListEdgesAppearInCrunchBaseRounds) {
  // Invariant: every investment edge missing from the AngelList profile is
  // recorded in some CrunchBase round of that company, so the paper's
  // two-source merge recovers the exact truth edge set.
  for (const auto& u : world().users()) {
    for (size_t i = 0; i < u.investments.size(); ++i) {
      if (u.investment_on_angellist[i]) continue;
      CompanyId c = u.investments[i];
      bool found = false;
      for (size_t round_idx : world().RoundsOf(c)) {
        const FundingRound& round = world().rounds()[round_idx];
        if (std::find(round.investors.begin(), round.investors.end(), u.id) !=
            round.investors.end()) {
          found = true;
          break;
        }
      }
      // Only funded companies have rounds; hidden edges into unfunded
      // companies would be unrecoverable. Verify they don't exist...
      // unless the company is unfunded, in which case the edge must be
      // AngelList-visible. (Checked by this assertion failing otherwise.)
      if (!world().companies()[c - 1].raised_funding) {
        ADD_FAILURE() << "hidden AL edge into unfunded company " << c;
      } else {
        EXPECT_TRUE(found) << "hidden AL edge (" << u.id << "," << c
                           << ") not in any CB round";
      }
    }
  }
}

TEST_F(WorldFixture, InvertedIndicesConsistent) {
  for (const auto& u : world().users()) {
    for (CompanyId c : u.follows_companies) {
      const auto& followers = world().FollowersOf(c);
      EXPECT_NE(std::find(followers.begin(), followers.end(), u.id),
                followers.end());
    }
    for (CompanyId c : u.investments) {
      const auto& investors = world().InvestorsOf(c);
      EXPECT_NE(std::find(investors.begin(), investors.end(), u.id),
                investors.end());
    }
  }
}

TEST_F(WorldFixture, EveryUserFollowsAtLeastOneCompany) {
  for (const auto& u : world().users()) {
    EXPECT_GE(u.follows_companies.size(), 1u);
  }
}

TEST_F(WorldFixture, CommunitiesPlantedWithPortfoliosAndMembers) {
  ASSERT_EQ(world().communities().size(), 96u);
  for (const auto& comm : world().communities()) {
    EXPECT_GE(comm.members.size(), 4u);
    EXPECT_GE(comm.portfolio.size(), 4u);
    EXPECT_GT(comm.herd, 0.0);
    EXPECT_LE(comm.herd, 1.0);
    for (UserId m : comm.members) {
      const UserTruth* u = world().FindUser(m);
      ASSERT_NE(u, nullptr);
      EXPECT_NE(std::find(u->communities.begin(), u->communities.end(),
                          comm.id),
                u->communities.end());
    }
  }
  // The designated strongest community herds at 0.95.
  EXPECT_DOUBLE_EQ(world().communities()[0].herd, 0.95);
}

TEST_F(WorldFixture, StrongCommunityHasHighCoInvestment) {
  const CommunityTruth& strong = world().communities()[0];
  // Mean pairwise shared investments should be near the 2.1 target.
  double total = 0;
  size_t pairs = 0;
  for (size_t i = 0; i < strong.members.size(); ++i) {
    const UserTruth* a = world().FindUser(strong.members[i]);
    for (size_t j = i + 1; j < strong.members.size(); ++j) {
      const UserTruth* b = world().FindUser(strong.members[j]);
      std::vector<CompanyId> shared;
      std::set_intersection(a->investments.begin(), a->investments.end(),
                            b->investments.begin(), b->investments.end(),
                            std::back_inserter(shared));
      total += static_cast<double>(shared.size());
      ++pairs;
    }
  }
  ASSERT_GT(pairs, 0u);
  EXPECT_GT(total / static_cast<double>(pairs), 1.0);
}

TEST_F(WorldFixture, FoundersAreFounderRoleUsers) {
  for (const auto& c : world().companies()) {
    EXPECT_GE(c.founders.size(), 1u);
    EXPECT_LE(c.founders.size(), 3u);
    for (UserId f : c.founders) {
      const UserTruth* u = world().FindUser(f);
      ASSERT_NE(u, nullptr);
      EXPECT_EQ(u->role, UserRole::kFounder);
    }
  }
}

TEST_F(WorldFixture, FundingRoundsBelongToFundedCompanies) {
  for (const auto& round : world().rounds()) {
    const CompanyTruth* c = world().FindCompany(round.company);
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->raised_funding);
    EXPECT_GT(round.amount_usd, 0.0);
  }
}

TEST(WorldGenerateTest, DeterministicPerSeed) {
  World a = World::Generate(TestConfig(0.005));
  World b = World::Generate(TestConfig(0.005));
  ASSERT_EQ(a.companies().size(), b.companies().size());
  for (size_t i = 0; i < a.companies().size(); i += 97) {
    EXPECT_EQ(a.companies()[i].name, b.companies()[i].name);
    EXPECT_EQ(a.companies()[i].raised_funding, b.companies()[i].raised_funding);
    EXPECT_EQ(a.companies()[i].facebook_likes, b.companies()[i].facebook_likes);
  }
  for (size_t i = 0; i < a.users().size(); i += 101) {
    EXPECT_EQ(a.users()[i].investments, b.users()[i].investments);
  }
}

TEST(WorldGenerateTest, DifferentSeedsDiffer) {
  WorldConfig c1 = TestConfig(0.005);
  WorldConfig c2 = TestConfig(0.005);
  c2.seed = 43;
  World a = World::Generate(c1);
  World b = World::Generate(c2);
  size_t diffs = 0;
  for (size_t i = 0; i < a.companies().size(); ++i) {
    if (a.companies()[i].social != b.companies()[i].social) ++diffs;
  }
  EXPECT_GT(diffs, 0u);
}

TEST(WorldGenerateTest, MinimumSizeFloor) {
  WorldConfig config = TestConfig(0.00001);  // would be ~7 companies
  World w = World::Generate(config);
  EXPECT_GE(w.companies().size(), 100u);
  EXPECT_GE(w.users().size(), 200u);
}

TEST(WorldGenerateTest, MedianEngagementNearConfigured) {
  World w = World::Generate(TestConfig(0.05));
  std::vector<int64_t> likes;
  for (const auto& c : w.companies()) {
    if (c.has_facebook() && c.facebook_likes > 0) {
      likes.push_back(c.facebook_likes);
    }
  }
  ASSERT_GT(likes.size(), 500u);
  std::sort(likes.begin(), likes.end());
  double median = static_cast<double>(likes[likes.size() / 2]);
  EXPECT_NEAR(median, 652, 652 * 0.15);
}

}  // namespace
}  // namespace cfnet::synth
