// Determinism and correctness of the parallel graph-analytics kernels:
// every ParallelOptions-taking kernel must produce bit-identical results
// for any thread count and any morsel size, and the bitset-accelerated
// intersection path must agree exactly with the sorted-merge fallback.

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "community/coda.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "core/community_metrics.h"
#include "graph/bipartite_graph.h"
#include "graph/centrality.h"
#include "graph/weighted_graph.h"
#include "stats/inference.h"
#include "stats/stats.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace cfnet {
namespace {

/// Heavy-tailed synthetic investor->company graph. One investor (id 1) gets
/// a large portfolio so the bitset intersection path (degree >= 64) is
/// exercised alongside the sorted-merge fallback.
graph::BipartiteGraph HeavyTailed(uint64_t seed, size_t investors = 400,
                                  size_t companies = 600) {
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (size_t i = 0; i < investors; ++i) {
    const size_t degree =
        i == 0 ? 120 : static_cast<size_t>(rng.PowerLaw(1, 40, 2.1));
    for (size_t d = 0; d < degree; ++d) {
      edges.emplace_back(
          i + 1, 100000 + static_cast<uint64_t>(rng.UniformInt(
                     0, static_cast<int64_t>(companies) - 1)));
    }
  }
  return graph::BipartiteGraph::FromEdges(edges);
}

/// Flattens a weighted graph into a comparable (offset, neighbor, weight)
/// triple-set so EXPECT_EQ reports structural differences.
struct FlatGraph {
  std::vector<size_t> degrees;
  std::vector<uint32_t> neighbors;
  std::vector<double> weights;

  bool operator==(const FlatGraph&) const = default;
};

FlatGraph Flatten(const graph::WeightedGraph& g) {
  FlatGraph flat;
  for (uint32_t v = 0; v < g.num_nodes(); ++v) {
    auto nbrs = g.Neighbors(v);
    auto ws = g.Weights(v);
    flat.degrees.push_back(nbrs.size());
    flat.neighbors.insert(flat.neighbors.end(), nbrs.begin(), nbrs.end());
    flat.weights.insert(flat.weights.end(), ws.begin(), ws.end());
  }
  return flat;
}

/// The (threads, morsel_size) grid each kernel is checked over, against the
/// sequential reference (pool = nullptr).
struct GridPoint {
  size_t threads;
  size_t morsel;
};

constexpr GridPoint kGrid[] = {
    {1, 0}, {2, 0}, {4, 0}, {2, 3}, {4, 7}, {4, 1 << 14},
};

TEST(GraphParallelTest, ProjectionIdenticalAcrossThreadsAndMorsels) {
  graph::BipartiteGraph g = HeavyTailed(11);
  FlatGraph reference = Flatten(graph::WeightedGraph::ProjectLeft(g));
  ASSERT_FALSE(reference.neighbors.empty());
  for (const GridPoint& p : kGrid) {
    ThreadPool pool(p.threads);
    ParallelOptions par{&pool, p.morsel};
    EXPECT_EQ(Flatten(graph::WeightedGraph::ProjectLeft(g, 0, par)), reference)
        << "threads=" << p.threads << " morsel=" << p.morsel;
  }
  // The degree cap must survive parallelization too.
  FlatGraph capped = Flatten(graph::WeightedGraph::ProjectLeft(g, 25));
  ThreadPool pool(4);
  ParallelOptions par{&pool, 5};
  EXPECT_EQ(Flatten(graph::WeightedGraph::ProjectLeft(g, 25, par)), capped);
}

TEST(GraphParallelTest, CentralityBitIdenticalAcrossThreadsAndMorsels) {
  graph::BipartiteGraph g = HeavyTailed(12, 150, 200);
  graph::WeightedGraph proj = graph::WeightedGraph::ProjectLeft(g);
  ASSERT_GT(proj.num_nodes(), 0u);

  const std::vector<double> bc = graph::BetweennessCentrality(proj);
  const std::vector<double> hc = graph::HarmonicCentrality(proj);
  const std::vector<double> bc_s = graph::BetweennessCentrality(proj, 40, 9);
  const std::vector<double> hc_s = graph::HarmonicCentrality(proj, 40, 9);
  for (const GridPoint& p : kGrid) {
    ThreadPool pool(p.threads);
    ParallelOptions par{&pool, p.morsel};
    // EXPECT_EQ (not NEAR): the ordered reduction promises bit-identity.
    EXPECT_EQ(graph::BetweennessCentrality(proj, 0, 1, par), bc);
    EXPECT_EQ(graph::HarmonicCentrality(proj, 0, 1, par), hc);
    EXPECT_EQ(graph::BetweennessCentrality(proj, 40, 9, par), bc_s);
    EXPECT_EQ(graph::HarmonicCentrality(proj, 40, 9, par), hc_s);
  }
}

TEST(GraphParallelTest, SharedInvestmentSizesIdenticalAcrossSharding) {
  graph::BipartiteGraph g = HeavyTailed(13);
  // Community containing the high-degree investor (dense index of id 1)
  // plus a spread of ordinary ones.
  std::vector<uint32_t> members;
  for (uint32_t l = 0; l < g.num_left(); l += 3) members.push_back(l);
  ASSERT_GE(members.size(), 64u);

  const std::vector<double> all =
      core::SharedInvestmentSizes(g, members);  // all-pairs path
  ASSERT_EQ(all.size(), members.size() * (members.size() - 1) / 2);
  const std::vector<double> sampled =
      core::SharedInvestmentSizes(g, members, 500, 3);  // sampled path
  ASSERT_EQ(sampled.size(), 500u);
  for (const GridPoint& p : kGrid) {
    ThreadPool pool(p.threads);
    ParallelOptions par{&pool, p.morsel};
    EXPECT_EQ(core::SharedInvestmentSizes(g, members, 2000000, 1, par), all)
        << "threads=" << p.threads << " morsel=" << p.morsel;
    EXPECT_EQ(core::SharedInvestmentSizes(g, members, 500, 3, par), sampled);
  }
}

TEST(GraphParallelTest, BitsetIntersectionMatchesBruteForce) {
  graph::BipartiteGraph g = HeavyTailed(14);
  std::vector<uint32_t> members;
  for (uint32_t l = 0; l < std::min<size_t>(g.num_left(), 50); ++l) {
    members.push_back(l);
  }
  ASSERT_GE(g.OutDegree(members[0]), 64u);  // row 0 takes the bitset path
  const std::vector<double> sizes = core::SharedInvestmentSizes(g, members);
  size_t pos = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j, ++pos) {
      auto a = g.OutNeighbors(members[i]);
      auto b = g.OutNeighbors(members[j]);
      std::vector<uint32_t> shared;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(shared));
      ASSERT_EQ(sizes[pos], static_cast<double>(shared.size()))
          << "pair (" << i << ", " << j << ")";
    }
  }
}

TEST(GraphParallelTest, GlobalSampleAndPercentIdenticalAcrossSharding) {
  graph::BipartiteGraph g = HeavyTailed(15);
  const std::vector<double> sample =
      core::GlobalSharedInvestmentSample(g, 2000, 5);
  ASSERT_EQ(sample.size(), 2000u);

  community::CommunitySet set;
  set.num_nodes = g.num_left();
  for (uint32_t l = 0; l < g.num_left(); ++l) {
    if (set.communities.empty() || set.communities.back().size() == 16) {
      set.communities.emplace_back();
    }
    set.communities.back().push_back(l);
  }
  const double percent = core::MeanSharedInvestorCompanyPercent(g, set);
  ASSERT_GT(percent, 0.0);
  for (const GridPoint& p : kGrid) {
    ThreadPool pool(p.threads);
    ParallelOptions par{&pool, p.morsel};
    EXPECT_EQ(core::GlobalSharedInvestmentSample(g, 2000, 5, par), sample);
    EXPECT_EQ(core::MeanSharedInvestorCompanyPercent(g, set, 2, par), percent);
  }
}

TEST(GraphParallelTest, CommunityLabelsIndependentOfProjectionThreads) {
  // Louvain and label propagation are sequential kernels, but they consume
  // the parallel projection: labels must not depend on how it was built.
  graph::BipartiteGraph g = HeavyTailed(16);
  graph::WeightedGraph ref = graph::WeightedGraph::ProjectLeft(g);
  community::LouvainResult louvain_ref = community::RunLouvain(ref);
  community::LabelPropagationResult lp_ref = community::RunLabelPropagation(ref);
  ASSERT_FALSE(louvain_ref.labels.empty());
  for (size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    ParallelOptions par{&pool, 9};
    graph::WeightedGraph proj = graph::WeightedGraph::ProjectLeft(g, 0, par);
    EXPECT_EQ(community::RunLouvain(proj).labels, louvain_ref.labels);
    EXPECT_EQ(community::RunLabelPropagation(proj).labels, lp_ref.labels);
  }
}

// The virtual-lane contract promises BYTE-identical outputs with the vector
// backends active vs the scalar fallback, at any thread/morsel count. These
// run the full pipelines both ways; EXPECT_EQ on doubles is deliberate.

TEST(GraphParallelTest, CodaFitBitIdenticalSimdOnOff) {
  graph::BipartiteGraph g = HeavyTailed(21, 120, 150);
  community::CodaConfig config;
  config.num_communities = 24;
  config.max_iterations = 4;
  config.seed = 7;
  for (int threads : {1, 3}) {
    config.num_threads = threads;
    community::Coda coda(config);
    community::CodaResult on = coda.Fit(g);
    community::CodaResult off;
    {
      simd::ScopedForceScalar force;
      off = coda.Fit(g);
    }
    EXPECT_EQ(on.f, off.f) << "threads=" << threads;
    EXPECT_EQ(on.h, off.h) << "threads=" << threads;
    EXPECT_EQ(on.log_likelihood_trace, off.log_likelihood_trace);
    EXPECT_EQ(on.final_log_likelihood, off.final_log_likelihood);
    EXPECT_EQ(on.threshold_used, off.threshold_used);
  }
}

TEST(GraphParallelTest, MetricsAndStatsBitIdenticalSimdOnOff) {
  graph::BipartiteGraph g = HeavyTailed(22);
  std::vector<uint32_t> members;
  for (uint32_t l = 0; l < g.num_left(); l += 3) members.push_back(l);

  std::vector<double> x, y;
  Rng rng(23);
  for (size_t i = 0; i < 4097; ++i) {
    x.push_back(rng.Uniform(-2.0, 2.0));
    y.push_back(0.6 * x.back() + rng.Uniform(-1.0, 1.0));
  }

  ThreadPool pool(3);
  ParallelOptions par{&pool, 7};
  auto weighted_degrees = [](const graph::WeightedGraph& wg) {
    std::vector<double> d;
    for (uint32_t v = 0; v < wg.num_nodes(); ++v) {
      d.push_back(wg.WeightedDegree(v));
    }
    return d;
  };
  const std::vector<double> sizes_on =
      core::SharedInvestmentSizes(g, members, 2000000, 1, par);
  const std::vector<double> degrees_on =
      weighted_degrees(graph::WeightedGraph::ProjectLeft(g));
  const stats::Summary summary_on = stats::Summarize(x);
  const double pearson_on = stats::PearsonCorrelation(x, y);

  simd::ScopedForceScalar force;
  EXPECT_EQ(core::SharedInvestmentSizes(g, members, 2000000, 1, par),
            sizes_on);
  EXPECT_EQ(weighted_degrees(graph::WeightedGraph::ProjectLeft(g)),
            degrees_on);
  const stats::Summary summary_off = stats::Summarize(x);
  EXPECT_EQ(summary_on.mean, summary_off.mean);
  EXPECT_EQ(summary_on.stddev, summary_off.stddev);
  EXPECT_EQ(pearson_on, stats::PearsonCorrelation(x, y));
}

TEST(GraphParallelTest, FilterLeftDirectCsrMatchesRebuild) {
  graph::BipartiteGraph g = HeavyTailed(17);
  for (size_t min_degree : {2u, 4u, 9u}) {
    graph::BipartiteGraph filtered = g.FilterLeftByMinDegree(min_degree);
    // Reference: re-running FromEdges over the kept edges must give the
    // same graph the direct CSR construction produced.
    std::vector<std::pair<uint64_t, uint64_t>> kept;
    for (uint32_t l = 0; l < g.num_left(); ++l) {
      if (g.OutDegree(l) < min_degree) continue;
      for (uint32_t r : g.OutNeighbors(l)) {
        kept.emplace_back(g.LeftId(l), g.RightId(r));
      }
    }
    graph::BipartiteGraph reference = graph::BipartiteGraph::FromEdges(kept);
    ASSERT_EQ(filtered.num_left(), reference.num_left());
    ASSERT_EQ(filtered.num_right(), reference.num_right());
    ASSERT_EQ(filtered.num_edges(), reference.num_edges());
    for (uint32_t l = 0; l < filtered.num_left(); ++l) {
      ASSERT_EQ(filtered.LeftId(l), reference.LeftId(l));
      auto fa = filtered.OutNeighbors(l);
      auto fb = reference.OutNeighbors(l);
      ASSERT_EQ(std::vector<uint32_t>(fa.begin(), fa.end()),
                std::vector<uint32_t>(fb.begin(), fb.end()));
    }
    for (uint32_t r = 0; r < filtered.num_right(); ++r) {
      ASSERT_EQ(filtered.RightId(r), reference.RightId(r));
      auto ia = filtered.InNeighbors(r);
      auto ib = reference.InNeighbors(r);
      ASSERT_EQ(std::vector<uint32_t>(ia.begin(), ia.end()),
                std::vector<uint32_t>(ib.begin(), ib.end()));
    }
    // Index maps must resolve the remapped ids.
    for (uint32_t l = 0; l < filtered.num_left(); ++l) {
      EXPECT_EQ(filtered.LeftIndexOf(filtered.LeftId(l)), l);
    }
  }
}

}  // namespace
}  // namespace cfnet
