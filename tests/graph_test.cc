#include "graph/bipartite_graph.h"

#include <gtest/gtest.h>

#include "graph/graph_io.h"
#include "graph/weighted_graph.h"

namespace cfnet::graph {
namespace {

BipartiteGraph Sample() {
  // investors 10,20,30 -> companies 1,2,3,4
  return BipartiteGraph::FromEdges({
      {10, 1}, {10, 2},
      {20, 1}, {20, 2}, {20, 3},
      {30, 3}, {30, 4},
  });
}

TEST(BipartiteGraphTest, BasicDimensions) {
  BipartiteGraph g = Sample();
  EXPECT_EQ(g.num_left(), 3u);
  EXPECT_EQ(g.num_right(), 4u);
  EXPECT_EQ(g.num_edges(), 7u);
}

TEST(BipartiteGraphTest, EmptyGraph) {
  BipartiteGraph g = BipartiteGraph::FromEdges({});
  EXPECT_EQ(g.num_left(), 0u);
  EXPECT_EQ(g.num_right(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(BipartiteGraphTest, DuplicateEdgesCollapse) {
  BipartiteGraph g = BipartiteGraph::FromEdges({{1, 5}, {1, 5}, {1, 5}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.OutDegree(0), 1u);
}

TEST(BipartiteGraphTest, IdMappingsRoundTrip) {
  BipartiteGraph g = Sample();
  for (uint64_t id : {10ull, 20ull, 30ull}) {
    uint32_t idx = g.LeftIndexOf(id);
    ASSERT_NE(idx, BipartiteGraph::kInvalidIndex);
    EXPECT_EQ(g.LeftId(idx), id);
  }
  for (uint64_t id : {1ull, 2ull, 3ull, 4ull}) {
    uint32_t idx = g.RightIndexOf(id);
    ASSERT_NE(idx, BipartiteGraph::kInvalidIndex);
    EXPECT_EQ(g.RightId(idx), id);
  }
  EXPECT_EQ(g.LeftIndexOf(999), BipartiteGraph::kInvalidIndex);
  EXPECT_EQ(g.RightIndexOf(999), BipartiteGraph::kInvalidIndex);
}

TEST(BipartiteGraphTest, NeighborsSortedAndConsistent) {
  BipartiteGraph g = Sample();
  // For every out-edge there must be the matching in-edge and vice versa.
  size_t out_total = 0;
  for (uint32_t l = 0; l < g.num_left(); ++l) {
    auto nbrs = g.OutNeighbors(l);
    out_total += nbrs.size();
    for (size_t i = 1; i < nbrs.size(); ++i) EXPECT_LT(nbrs[i - 1], nbrs[i]);
    for (uint32_t r : nbrs) {
      auto in = g.InNeighbors(r);
      EXPECT_NE(std::find(in.begin(), in.end(), l), in.end());
    }
  }
  size_t in_total = 0;
  for (uint32_t r = 0; r < g.num_right(); ++r) {
    auto in = g.InNeighbors(r);
    in_total += in.size();
    for (size_t i = 1; i < in.size(); ++i) EXPECT_LT(in[i - 1], in[i]);
  }
  EXPECT_EQ(out_total, g.num_edges());
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(BipartiteGraphTest, SharedOutNeighbors) {
  BipartiteGraph g = Sample();
  uint32_t i10 = g.LeftIndexOf(10);
  uint32_t i20 = g.LeftIndexOf(20);
  uint32_t i30 = g.LeftIndexOf(30);
  EXPECT_EQ(g.SharedOutNeighbors(i10, i20), 2u);  // companies 1,2
  EXPECT_EQ(g.SharedOutNeighbors(i20, i30), 1u);  // company 3
  EXPECT_EQ(g.SharedOutNeighbors(i10, i30), 0u);
  EXPECT_EQ(g.SharedOutNeighbors(i10, i10), 2u);  // self intersection
}

TEST(BipartiteGraphTest, FilterLeftByMinDegree) {
  BipartiteGraph g = Sample();
  BipartiteGraph filtered = g.FilterLeftByMinDegree(3);
  EXPECT_EQ(filtered.num_left(), 1u);  // only investor 20 has degree 3
  EXPECT_EQ(filtered.LeftId(0), 20u);
  EXPECT_EQ(filtered.num_edges(), 3u);
  // Companies with no remaining investors disappear.
  EXPECT_EQ(filtered.num_right(), 3u);
  EXPECT_EQ(filtered.RightIndexOf(4), BipartiteGraph::kInvalidIndex);
}

TEST(BipartiteGraphTest, DegreeSummary) {
  BipartiteGraph g = BipartiteGraph::FromEdges({
      {1, 1},                          // degree 1
      {2, 1}, {2, 2},                  // degree 2
      {3, 1}, {3, 2}, {3, 3}, {3, 4},  // degree 4
  });
  DegreeSummary s = SummarizeOutDegrees(g, {2, 4});
  EXPECT_DOUBLE_EQ(s.mean, 7.0 / 3);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_EQ(s.max, 4u);
  ASSERT_EQ(s.concentration.size(), 2u);
  EXPECT_DOUBLE_EQ(s.concentration[0].node_fraction, 2.0 / 3);
  EXPECT_DOUBLE_EQ(s.concentration[0].edge_fraction, 6.0 / 7);
  EXPECT_DOUBLE_EQ(s.concentration[1].node_fraction, 1.0 / 3);
  EXPECT_DOUBLE_EQ(s.concentration[1].edge_fraction, 4.0 / 7);
}

// --- weighted projection ------------------------------------------------------

TEST(WeightedGraphTest, ProjectLeftCountsCoInvestments) {
  BipartiteGraph g = Sample();
  WeightedGraph p = WeightedGraph::ProjectLeft(g);
  EXPECT_EQ(p.num_nodes(), 3u);
  EXPECT_EQ(p.num_edges(), 2u);  // (10,20) and (20,30)
  uint32_t i10 = g.LeftIndexOf(10);
  uint32_t i20 = g.LeftIndexOf(20);
  auto nbrs = p.Neighbors(i10);
  auto ws = p.Weights(i10);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0], i20);
  EXPECT_DOUBLE_EQ(ws[0], 2.0);  // two shared companies
  EXPECT_DOUBLE_EQ(p.WeightedDegree(i20), 3.0);  // 2 with i10, 1 with i30
  EXPECT_DOUBLE_EQ(p.TotalWeight2m(), 6.0);
}

TEST(WeightedGraphTest, ProjectSkipsHugeCompanies) {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (uint64_t i = 1; i <= 20; ++i) edges.emplace_back(i, 100);  // hub
  edges.emplace_back(1, 200);
  edges.emplace_back(2, 200);
  BipartiteGraph g = BipartiteGraph::FromEdges(edges);
  WeightedGraph capped = WeightedGraph::ProjectLeft(g, /*max_right_degree=*/10);
  EXPECT_EQ(capped.num_edges(), 1u);  // only the small company contributes
  WeightedGraph full = WeightedGraph::ProjectLeft(g);
  EXPECT_EQ(full.num_edges(), 20u * 19 / 2);
}

TEST(WeightedGraphTest, FromEdgesBuildsSymmetricAdjacency) {
  WeightedGraph g = WeightedGraph::FromEdges(3, {{0, 1, 2.5}, {1, 2, 1.0}});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 3.5);
  EXPECT_DOUBLE_EQ(g.TotalWeight2m(), 7.0);
  auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 1u);
  EXPECT_EQ(n0[0], 1u);
}

}  // namespace
}  // namespace cfnet::graph

namespace cfnet::graph {
namespace {

// --- serialization + SNAP interop -------------------------------------------

TEST(GraphIoTest, BinaryRoundTripThroughDfs) {
  BipartiteGraph g = Sample();
  dfs::MiniDfs fs;
  ASSERT_TRUE(WriteBipartiteGraph(&fs, "/graphs/investors.bin", g).ok());
  auto loaded = ReadBipartiteGraph(fs, "/graphs/investors.bin");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_left(), g.num_left());
  EXPECT_EQ(loaded->num_right(), g.num_right());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  for (uint32_t l = 0; l < g.num_left(); ++l) {
    uint32_t ll = loaded->LeftIndexOf(g.LeftId(l));
    ASSERT_NE(ll, BipartiteGraph::kInvalidIndex);
    ASSERT_EQ(loaded->OutDegree(ll), g.OutDegree(l));
    for (uint32_t r : g.OutNeighbors(l)) {
      uint32_t rr = loaded->RightIndexOf(g.RightId(r));
      auto nbrs = loaded->OutNeighbors(ll);
      EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), rr));
    }
  }
}

TEST(GraphIoTest, EmptyGraphRoundTrips) {
  BipartiteGraph g = BipartiteGraph::FromEdges({});
  dfs::MiniDfs fs;
  ASSERT_TRUE(WriteBipartiteGraph(&fs, "/graphs/empty.bin", g).ok());
  auto loaded = ReadBipartiteGraph(fs, "/graphs/empty.bin");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), 0u);
}

TEST(GraphIoTest, RejectsCorruptedFiles) {
  BipartiteGraph g = Sample();
  dfs::MiniDfs fs;
  ASSERT_TRUE(WriteBipartiteGraph(&fs, "/g.bin", g).ok());
  auto content = fs.ReadFile("/g.bin");
  ASSERT_TRUE(content.ok());
  // Bad magic.
  std::string bad = *content;
  bad[0] = 'X';
  ASSERT_TRUE(fs.WriteFile("/bad1.bin", bad).ok());
  EXPECT_EQ(ReadBipartiteGraph(fs, "/bad1.bin").status().code(),
            StatusCode::kCorruption);
  // Truncation.
  ASSERT_TRUE(fs.WriteFile("/bad2.bin", content->substr(0, 40)).ok());
  EXPECT_EQ(ReadBipartiteGraph(fs, "/bad2.bin").status().code(),
            StatusCode::kCorruption);
  // Trailing junk.
  ASSERT_TRUE(fs.WriteFile("/bad3.bin", *content + "junk").ok());
  EXPECT_EQ(ReadBipartiteGraph(fs, "/bad3.bin").status().code(),
            StatusCode::kCorruption);
  EXPECT_TRUE(ReadBipartiteGraph(fs, "/missing.bin").status().IsNotFound());
}

TEST(GraphIoTest, SnapEdgeListRoundTrip) {
  BipartiteGraph g = Sample();
  std::string snap = ToSnapEdgeList(g);
  EXPECT_NE(snap.find("# Nodes: 3+4 Edges: 7"), std::string::npos);
  EXPECT_NE(snap.find("10\t1"), std::string::npos);
  auto parsed = FromSnapEdgeList(snap);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_edges(), g.num_edges());
  EXPECT_EQ(parsed->num_left(), g.num_left());
  EXPECT_EQ(parsed->num_right(), g.num_right());
}

TEST(GraphIoTest, SnapParserRejectsMalformedLines) {
  EXPECT_FALSE(FromSnapEdgeList("1 2\n").ok());      // space, not tab
  EXPECT_FALSE(FromSnapEdgeList("a\tb\n").ok());     // non-numeric
  EXPECT_FALSE(FromSnapEdgeList("1\t2x\n").ok());    // trailing garbage
  auto ok = FromSnapEdgeList("# comment\n\n1\t2\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_edges(), 1u);
}

}  // namespace
}  // namespace cfnet::graph
