// Tests for fused narrow-stage execution and the morsel-driven scheduler:
// fused chains must be observationally identical to op-by-op execution,
// run as a single engine stage, and stay deadlock-free when actions are
// invoked from inside pool workers.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataflow/dataset.h"
#include "util/thread_pool.h"

namespace cfnet::dataflow {
namespace {

std::shared_ptr<ExecutionContext> Ctx(size_t threads = 4) {
  return std::make_shared<ExecutionContext>(threads);
}

std::vector<int64_t> Range64(int64_t n) {
  std::vector<int64_t> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(FusionTest, MapFilterMapChainMatchesReference) {
  auto ctx = Ctx();
  auto out = Dataset<int64_t>::FromVector(ctx, Range64(10000), 7)
                 .Map([](const int64_t& x) { return x * 3 + 1; })
                 .Filter([](const int64_t& x) { return x % 2 == 0; })
                 .Map([](const int64_t& x) { return x / 2; })
                 .Collect();
  std::vector<int64_t> expect;
  for (int64_t x = 0; x < 10000; ++x) {
    int64_t y = x * 3 + 1;
    if (y % 2 == 0) expect.push_back(y / 2);
  }
  EXPECT_EQ(out, expect);  // fused stage preserves source order
}

TEST(FusionTest, TypeChangingChainMatchesReference) {
  auto ctx = Ctx();
  auto out = Dataset<int64_t>::FromVector(ctx, Range64(500), 3)
                 .Map([](const int64_t& x) { return std::to_string(x); })
                 .Filter([](const std::string& s) { return s.size() == 2; })
                 .Map([](const std::string& s) { return s + "!"; })
                 .Collect();
  ASSERT_EQ(out.size(), 90u);  // 10..99
  EXPECT_EQ(out.front(), "10!");
  EXPECT_EQ(out.back(), "99!");
}

TEST(FusionTest, FlatMapIntoFilterMatchesReference) {
  auto ctx = Ctx();
  auto out = Dataset<int64_t>::FromVector(ctx, Range64(300), 5)
                 .FlatMap([](const int64_t& x) {
                   return std::vector<int64_t>{x, -x};
                 })
                 .Filter([](const int64_t& x) { return x > 0; })
                 .Map([](const int64_t& x) { return x * 10; })
                 .Collect();
  std::vector<int64_t> expect;
  for (int64_t x = 1; x < 300; ++x) expect.push_back(x * 10);
  EXPECT_EQ(out, expect);
}

TEST(FusionTest, SampleInsideChainMatchesSampleAtBoundary) {
  // Sample keys off stable stream indices; a 1:1 op before it must not
  // change which elements are picked.
  auto ctx = Ctx();
  auto src = Dataset<int64_t>::FromVector(ctx, Range64(20000), 6);
  auto sampled_then_mapped =
      src.Sample(0.25, 42).Map([](const int64_t& x) { return x + 1; }).Collect();
  auto mapped_then_sampled =
      src.Map([](const int64_t& x) { return x + 1; }).Sample(0.25, 42).Collect();
  EXPECT_EQ(sampled_then_mapped, mapped_then_sampled);
  // And roughly the requested fraction survives.
  EXPECT_NEAR(static_cast<double>(sampled_then_mapped.size()) / 20000.0, 0.25,
              0.02);
}

TEST(FusionTest, ThreeOpChainRunsAsSingleStage) {
  auto ctx = Ctx();
  auto ds = Dataset<int64_t>::FromVector(ctx, Range64(50000), 4)
                .Map([](const int64_t& x) { return x + 1; })
                .Filter([](const int64_t& x) { return x % 3 != 0; })
                .Map([](const int64_t& x) { return x * 2; });
  ctx->metrics().Reset();
  EXPECT_GT(ds.Count(), 0u);
  // The whole narrow chain is one fused stage (Count adds no stage of its
  // own on an already-materialized dataset).
  EXPECT_EQ(ctx->metrics().stages_run.load(), 1u);
  EXPECT_EQ(ctx->metrics().fused_ops.load(), 3u);
  EXPECT_GE(ctx->metrics().morsels_run.load(), 1u);
  EXPECT_GT(ctx->metrics().stage_wall_ns.load(), 0u);
}

TEST(FusionTest, MorselSplittingPreservesOrderOnSkewedPartitions) {
  // One giant partition plus tiny ones, morsels far smaller than the big
  // partition: reassembly must restore source order exactly.
  auto ctx = Ctx(4);
  ctx->set_morsel_size(64);
  auto out = Dataset<int64_t>::FromVector(ctx, Range64(10000), 1)
                 .Union(Dataset<int64_t>::FromVector(ctx, {-1, -2, -3}, 3))
                 .Map([](const int64_t& x) { return x; })
                 .Filter([](const int64_t& x) { return x != -2; })
                 .Collect();
  std::vector<int64_t> expect = Range64(10000);
  expect.push_back(-1);
  expect.push_back(-3);
  EXPECT_EQ(out, expect);
  // The skewed partition really was split into many morsels.
  ctx->metrics().Reset();
  auto ds2 = Dataset<int64_t>::FromVector(ctx, Range64(10000), 1)
                 .Map([](const int64_t& x) { return x; });
  ds2.Count();
  EXPECT_GT(ctx->metrics().morsels_run.load(), 100u);
}

TEST(FusionTest, CachePinsMaterializationForDownstreamBranches) {
  auto ctx = Ctx();
  std::atomic<int> evals{0};
  auto expensive = Dataset<int64_t>::FromVector(ctx, Range64(1000), 4)
                       .Map([&evals](const int64_t& x) {
                         evals.fetch_add(1, std::memory_order_relaxed);
                         return x * 2;
                       })
                       .Cache();
  auto a = expensive.Filter([](const int64_t& x) { return x % 4 == 0; }).Count();
  auto b = expensive.Filter([](const int64_t& x) { return x % 4 != 0; }).Count();
  EXPECT_EQ(a + b, 1000u);
  // Cache() pins one materialization; the two branches reuse it instead of
  // re-running the Map from the source.
  EXPECT_EQ(evals.load(), 1000);
}

TEST(FusionTest, UncachedBranchedChainRecomputesSparkStyle) {
  auto ctx = Ctx();
  std::atomic<int> evals{0};
  auto mapped = Dataset<int64_t>::FromVector(ctx, Range64(100), 2)
                    .Map([&evals](const int64_t& x) {
                      evals.fetch_add(1, std::memory_order_relaxed);
                      return x * 2;
                    });
  mapped.Count();
  mapped.Count();  // memoized: the same impl does not recompute
  EXPECT_EQ(evals.load(), 100);
  // ...but a new downstream chain built *before* materialization re-runs the
  // narrow pipeline from the source (documented Spark-style semantics).
  std::atomic<int> evals2{0};
  auto mapped2 = Dataset<int64_t>::FromVector(ctx, Range64(100), 2)
                     .Map([&evals2](const int64_t& x) {
                       evals2.fetch_add(1, std::memory_order_relaxed);
                       return x;
                     });
  auto c1 = mapped2.Filter([](const int64_t& x) { return x % 2 == 0; }).Count();
  auto c2 = mapped2.Filter([](const int64_t& x) { return x % 2 != 0; }).Count();
  EXPECT_EQ(c1 + c2, 100u);
  EXPECT_EQ(evals2.load(), 200);
}

TEST(FusionTest, NestedActionInsidePoolWorkerDoesNotDeadlock) {
  // Evaluating a dataset from inside another dataset's task used to require
  // "call only from outside the pool"; caller-runs bulk execution makes it
  // safe even on a single-worker pool where no other thread can help.
  auto ctx = Ctx(1);
  auto inner_src = Dataset<int64_t>::FromVector(ctx, Range64(100), 2);
  auto out = Dataset<int64_t>::FromVector(ctx, Range64(8), 4)
                 .Map([inner_src](const int64_t& x) {
                   auto inner = inner_src
                                    .Filter([x](const int64_t& y) {
                                      return y % 8 == x;
                                    })
                                    .Count();
                   return x * 1000 + static_cast<int64_t>(inner);
                 })
                 .Collect();
  ASSERT_EQ(out.size(), 8u);
  for (int64_t x = 0; x < 8; ++x) {
    int64_t expect_count = 100 / 8 + (x < 100 % 8 ? 1 : 0);
    EXPECT_EQ(out[static_cast<size_t>(x)], x * 1000 + expect_count);
  }
}

TEST(FusionTest, RunBulkPropagatesFirstException) {
  cfnet::ThreadPool pool(2);
  EXPECT_THROW(
      pool.RunBulk(16,
                   [](size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Pool stays usable after a failed bulk.
  std::atomic<size_t> ran{0};
  pool.RunBulk(8, [&ran](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8u);
}

TEST(FusionTest, EmptyPartitionsAndEmptyChainOutput) {
  auto ctx = Ctx();
  // More partitions than elements: some partitions are empty.
  auto out = Dataset<int64_t>::FromVector(ctx, Range64(3), 8)
                 .Map([](const int64_t& x) { return x + 1; })
                 .Filter([](const int64_t& x) { return x < 0; })
                 .Collect();
  EXPECT_TRUE(out.empty());
  auto none = Dataset<int64_t>::FromVector(ctx, {}, 4)
                  .Map([](const int64_t& x) { return x; })
                  .Count();
  EXPECT_EQ(none, 0u);
}

}  // namespace
}  // namespace cfnet::dataflow
