#include "dataflow/dataset.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace cfnet::dataflow {
namespace {

std::shared_ptr<ExecutionContext> Ctx(size_t threads = 4) {
  return std::make_shared<ExecutionContext>(threads);
}

std::vector<int> Range(int n) {
  std::vector<int> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(DatasetTest, CollectPreservesElements) {
  auto ctx = Ctx();
  auto ds = Dataset<int>::FromVector(ctx, Range(1000), 7);
  std::vector<int> out = ds.Collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, Range(1000));
  EXPECT_EQ(ds.Count(), 1000u);
  EXPECT_EQ(ds.num_partitions(), 7u);
}

TEST(DatasetTest, RangePartitioningIsBalanced) {
  auto ctx = Ctx();
  auto ds = Dataset<int>::FromVector(ctx, Range(10), 3);
  // Partition sizes 4,3,3 and order preserved on Collect.
  EXPECT_EQ(ds.Collect(), Range(10));
}

TEST(DatasetTest, MapTransformsEveryElement) {
  auto ctx = Ctx();
  auto out = Dataset<int>::FromVector(ctx, Range(100))
                 .Map([](const int& x) { return x * 2; })
                 .Collect();
  std::sort(out.begin(), out.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], 2 * i);
}

TEST(DatasetTest, MapChangesType) {
  auto ctx = Ctx();
  auto out = Dataset<int>::FromVector(ctx, {1, 22, 333})
                 .Map([](const int& x) { return std::to_string(x); })
                 .Collect();
  EXPECT_EQ(out, (std::vector<std::string>{"1", "22", "333"}));
}

TEST(DatasetTest, FilterKeepsMatching) {
  auto ctx = Ctx();
  size_t evens = Dataset<int>::FromVector(ctx, Range(1001))
                     .Filter([](const int& x) { return x % 2 == 0; })
                     .Count();
  EXPECT_EQ(evens, 501u);
}

TEST(DatasetTest, FlatMapExpandsAndContracts) {
  auto ctx = Ctx();
  auto out = Dataset<int>::FromVector(ctx, {0, 1, 2, 3})
                 .FlatMap([](const int& x) {
                   return std::vector<int>(static_cast<size_t>(x), x);
                 })
                 .Collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 2, 3, 3, 3}));
}

TEST(DatasetTest, UnionConcatenates) {
  auto ctx = Ctx();
  auto a = Dataset<int>::FromVector(ctx, {1, 2});
  auto b = Dataset<int>::FromVector(ctx, {3});
  auto out = a.Union(b).Collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(DatasetTest, DistinctRemovesDuplicates) {
  auto ctx = Ctx();
  std::vector<int> data;
  for (int i = 0; i < 500; ++i) data.push_back(i % 50);
  auto out = Dataset<int>::FromVector(ctx, data).Distinct().Collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, Range(50));
}

TEST(DatasetTest, DistinctOnStrings) {
  auto ctx = Ctx();
  auto out = Dataset<std::string>::FromVector(ctx, {"a", "b", "a", "c", "b"})
                 .Distinct()
                 .Collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(DatasetTest, SampleApproximatesFraction) {
  auto ctx = Ctx();
  size_t n = Dataset<int>::FromVector(ctx, Range(20000)).Sample(0.25, 99).Count();
  EXPECT_NEAR(static_cast<double>(n), 5000, 300);
  // Deterministic per seed.
  size_t n2 = Dataset<int>::FromVector(ctx, Range(20000)).Sample(0.25, 99).Count();
  EXPECT_EQ(n, n2);
}

TEST(DatasetTest, RepartitionPreservesElements) {
  auto ctx = Ctx();
  auto ds = Dataset<int>::FromVector(ctx, Range(100), 2).Repartition(9);
  EXPECT_EQ(ds.num_partitions(), 9u);
  auto out = ds.Collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, Range(100));
}

TEST(DatasetTest, ReduceSums) {
  auto ctx = Ctx();
  int sum = Dataset<int>::FromVector(ctx, Range(101))
                .Reduce([](int a, int b) { return a + b; }, 0);
  EXPECT_EQ(sum, 5050);
}

TEST(DatasetTest, ForEachVisitsAll) {
  auto ctx = Ctx();
  std::atomic<int> sum{0};
  Dataset<int>::FromVector(ctx, Range(100)).ForEach([&sum](const int& x) {
    sum.fetch_add(x);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(DatasetTest, SortByAndTopBy) {
  auto ctx = Ctx();
  auto ds = Dataset<int>::FromVector(ctx, {5, 3, 9, 1, 7});
  EXPECT_EQ(ds.SortBy([](const int& x) { return x; }),
            (std::vector<int>{1, 3, 5, 7, 9}));
  EXPECT_EQ(ds.TopBy(2, [](const int& x) { return x; }),
            (std::vector<int>{9, 7}));
  EXPECT_EQ(ds.TopBy(99, [](const int& x) { return x; }).size(), 5u);
}

TEST(DatasetTest, LazinessComputesOnce) {
  auto ctx = Ctx();
  std::atomic<int> calls{0};
  auto ds = Dataset<int>::FromVector(ctx, Range(10)).Map([&calls](const int& x) {
    calls.fetch_add(1);
    return x;
  });
  EXPECT_EQ(calls.load(), 0);  // lazy until an action
  ds.Count();
  EXPECT_EQ(calls.load(), 10);
  ds.Collect();  // memoized: no recompute
  EXPECT_EQ(calls.load(), 10);
}

TEST(DatasetTest, ChainedPipelineMatchesSerialReference) {
  auto ctx = Ctx(8);
  std::vector<int> data = Range(5000);
  auto result = Dataset<int>::FromVector(ctx, data, 16)
                    .Map([](const int& x) { return x * 3; })
                    .Filter([](const int& x) { return x % 2 == 0; })
                    .FlatMap([](const int& x) {
                      return std::vector<int>{x, x + 1};
                    })
                    .Collect();
  std::vector<int> expected;
  for (int x : data) {
    int y = x * 3;
    if (y % 2 == 0) {
      expected.push_back(y);
      expected.push_back(y + 1);
    }
  }
  std::sort(result.begin(), result.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result, expected);
}

// --- key-value operations ---------------------------------------------------

TEST(KeyValueTest, ReduceByKeySums) {
  auto ctx = Ctx();
  std::vector<std::pair<int, int>> kvs;
  for (int i = 0; i < 1000; ++i) kvs.emplace_back(i % 10, 1);
  auto out = ReduceByKey(Dataset<std::pair<int, int>>::FromVector(ctx, kvs),
                         [](int a, int b) { return a + b; })
                 .Collect();
  ASSERT_EQ(out.size(), 10u);
  for (const auto& [k, v] : out) EXPECT_EQ(v, 100);
}

TEST(KeyValueTest, GroupByKeyCollectsValues) {
  auto ctx = Ctx();
  std::vector<std::pair<std::string, int>> kvs = {
      {"a", 1}, {"b", 2}, {"a", 3}, {"a", 5}};
  auto out = GroupByKey(
                 Dataset<std::pair<std::string, int>>::FromVector(ctx, kvs))
                 .Collect();
  ASSERT_EQ(out.size(), 2u);
  std::sort(out.begin(), out.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  EXPECT_EQ(out[0].first, "a");
  std::vector<int> vals = out[0].second;
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(vals, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(out[1].second, (std::vector<int>{2}));
}

TEST(KeyValueTest, InnerJoinMatchesPairs) {
  auto ctx = Ctx();
  auto left = Dataset<std::pair<int, std::string>>::FromVector(
      ctx, {{1, "a"}, {2, "b"}, {2, "b2"}, {3, "c"}});
  auto right = Dataset<std::pair<int, double>>::FromVector(
      ctx, {{2, 2.0}, {3, 3.0}, {4, 4.0}});
  auto out = Join(left, right).Collect();
  // Key 2 joins twice (two left rows), key 3 once; keys 1,4 drop.
  ASSERT_EQ(out.size(), 3u);
  std::multiset<int> keys;
  for (const auto& [k, v] : out) keys.insert(k);
  EXPECT_EQ(keys.count(2), 2u);
  EXPECT_EQ(keys.count(3), 1u);
}

TEST(KeyValueTest, LeftOuterJoinKeepsUnmatched) {
  auto ctx = Ctx();
  auto left = Dataset<std::pair<int, std::string>>::FromVector(
      ctx, {{1, "a"}, {2, "b"}});
  auto right =
      Dataset<std::pair<int, int>>::FromVector(ctx, {{2, 20}});
  auto out = LeftOuterJoin(left, right).Collect();
  ASSERT_EQ(out.size(), 2u);
  for (const auto& [k, v] : out) {
    if (k == 1) {
      EXPECT_FALSE(v.second.second);  // unmatched flag
    } else {
      EXPECT_TRUE(v.second.second);
      EXPECT_EQ(v.second.first, 20);
    }
  }
}

TEST(KeyValueTest, CountByKey) {
  auto ctx = Ctx();
  std::vector<std::pair<std::string, int>> kvs = {
      {"x", 0}, {"y", 0}, {"x", 0}, {"x", 0}};
  auto counts =
      CountByKey(Dataset<std::pair<std::string, int>>::FromVector(ctx, kvs));
  EXPECT_EQ(counts["x"], 3u);
  EXPECT_EQ(counts["y"], 1u);
}

TEST(KeyValueTest, KeyByDerivesKeys) {
  auto ctx = Ctx();
  auto out = KeyBy(Dataset<std::string>::FromVector(ctx, {"aa", "b", "ccc"}),
                   [](const std::string& s) { return s.size(); })
                 .Collect();
  ASSERT_EQ(out.size(), 3u);
  for (const auto& [k, v] : out) EXPECT_EQ(k, v.size());
}

TEST(KeyValueTest, LargeShuffleMatchesReference) {
  auto ctx = Ctx(8);
  std::vector<std::pair<int, int>> kvs;
  std::unordered_map<int, long> expected;
  for (int i = 0; i < 50000; ++i) {
    int k = (i * 7919) % 997;
    kvs.emplace_back(k, i);
    expected[k] += i;
  }
  auto out = ReduceByKey(
                 Dataset<std::pair<int, int>>::FromVector(ctx, kvs, 32)
                     .Map([](const std::pair<int, int>& kv) {
                       return std::make_pair(kv.first,
                                             static_cast<long>(kv.second));
                     }),
                 [](long a, long b) { return a + b; }, 16)
                 .Collect();
  ASSERT_EQ(out.size(), expected.size());
  for (const auto& [k, v] : out) EXPECT_EQ(v, expected[k]) << "key " << k;
}

TEST(EngineMetricsTest, CountsTasksAndShuffles) {
  auto ctx = Ctx(4);
  auto ds = Dataset<int>::FromVector(ctx, Range(100), 4)
                .Map([](const int& x) { return std::make_pair(x % 5, x); });
  ReduceByKey(ds, [](int a, int b) { return a + b; }).Collect();
  EXPECT_GT(ctx->metrics().tasks_launched.load(), 0u);
  EXPECT_EQ(ctx->metrics().shuffle_records.load(), 100u);
  EXPECT_GT(ctx->metrics().stages_run.load(), 0u);
}

}  // namespace
}  // namespace cfnet::dataflow

namespace cfnet::dataflow {
namespace {

TEST(KeyValueTest, AggregateByKeyWithDifferentAccumulatorType) {
  auto ctx = std::make_shared<ExecutionContext>(4);
  std::vector<std::pair<int, int>> kvs;
  for (int i = 0; i < 300; ++i) kvs.emplace_back(i % 3, i);
  // Accumulator: (count, sum) pair.
  using Acc = std::pair<long, long>;
  auto out = AggregateByKey(
      Dataset<std::pair<int, int>>::FromVector(ctx, kvs, 8), Acc{0, 0},
      [](Acc a, int v) {
        return Acc{a.first + 1, a.second + v};
      },
      [](Acc a, Acc b) {
        return Acc{a.first + b.first, a.second + b.second};
      });
  auto collected = out.Collect();
  ASSERT_EQ(collected.size(), 3u);
  for (const auto& [k, acc] : collected) {
    EXPECT_EQ(acc.first, 100);  // 100 values per key
    long expected_sum = 0;
    for (int i = 0; i < 300; ++i) {
      if (i % 3 == k) expected_sum += i;
    }
    EXPECT_EQ(acc.second, expected_sum);
  }
}

TEST(KeyValueTest, AggregateByKeyEqualsReduceByKeyForSameType) {
  auto ctx = std::make_shared<ExecutionContext>(4);
  std::vector<std::pair<int, long>> kvs;
  for (int i = 0; i < 5000; ++i) kvs.emplace_back(i % 97, 1L);
  auto via_reduce =
      ReduceByKey(Dataset<std::pair<int, long>>::FromVector(ctx, kvs),
                  [](long a, long b) { return a + b; })
          .Collect();
  auto via_agg = AggregateByKey(
                     Dataset<std::pair<int, long>>::FromVector(ctx, kvs), 0L,
                     [](long a, long v) { return a + v; },
                     [](long a, long b) { return a + b; })
                     .Collect();
  std::unordered_map<int, long> expect(via_reduce.begin(), via_reduce.end());
  ASSERT_EQ(via_agg.size(), expect.size());
  for (const auto& [k, v] : via_agg) EXPECT_EQ(v, expect[k]);
}

TEST(KeyValueTest, CoGroupKeepsBothSides) {
  auto ctx = std::make_shared<ExecutionContext>(4);
  auto left = Dataset<std::pair<int, std::string>>::FromVector(
      ctx, {{1, "a"}, {1, "b"}, {2, "c"}});
  auto right =
      Dataset<std::pair<int, int>>::FromVector(ctx, {{1, 10}, {3, 30}});
  auto out = CoGroup(left, right).Collect();
  ASSERT_EQ(out.size(), 3u);  // keys 1, 2, 3
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_EQ(out[0].first, 1);
  EXPECT_EQ(out[0].second.first.size(), 2u);
  EXPECT_EQ(out[0].second.second, (std::vector<int>{10}));
  EXPECT_EQ(out[1].first, 2);
  EXPECT_TRUE(out[1].second.second.empty());
  EXPECT_EQ(out[2].first, 3);
  EXPECT_TRUE(out[2].second.first.empty());
  EXPECT_EQ(out[2].second.second, (std::vector<int>{30}));
}

}  // namespace
}  // namespace cfnet::dataflow
