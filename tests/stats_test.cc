#include "stats/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cfnet::stats {
namespace {

TEST(SummarizeTest, BasicMoments) {
  Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(SummarizeTest, EvenCountMedianAverages) {
  Summary s = Summarize({1, 2, 3, 10});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(SummarizeTest, EmptyAndSingleton) {
  EXPECT_EQ(Summarize({}).n, 0u);
  Summary s = Summarize({7});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(EcdfTest, StepFunctionValues) {
  Ecdf f({1, 2, 2, 4});
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1), 0.25);
  EXPECT_DOUBLE_EQ(f(2), 0.75);
  EXPECT_DOUBLE_EQ(f(3.9), 0.75);
  EXPECT_DOUBLE_EQ(f(4), 1.0);
  EXPECT_DOUBLE_EQ(f(100), 1.0);
}

TEST(EcdfTest, Quantiles) {
  Ecdf f({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(f.Quantile(0.5), 30);
  EXPECT_DOUBLE_EQ(f.Quantile(0.2), 10);
  EXPECT_DOUBLE_EQ(f.Quantile(1.0), 50);
  EXPECT_DOUBLE_EQ(f.Quantile(0.0), 10);
}

TEST(EcdfTest, CurveHasDistinctXsEndingAtOne) {
  Ecdf f({1, 1, 2, 3, 3, 3});
  auto curve = f.Curve();
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].x, 1);
  EXPECT_DOUBLE_EQ(curve[0].p, 2.0 / 6);
  EXPECT_DOUBLE_EQ(curve[2].x, 3);
  EXPECT_DOUBLE_EQ(curve[2].p, 1.0);
}

TEST(EcdfTest, CurveThinning) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(i);
  Ecdf f(std::move(xs));
  auto curve = f.Curve(10);
  EXPECT_EQ(curve.size(), 10u);
  EXPECT_DOUBLE_EQ(curve.front().x, 0);
  EXPECT_DOUBLE_EQ(curve.back().x, 999);
  EXPECT_DOUBLE_EQ(curve.back().p, 1.0);
}

TEST(EcdfTest, KsDistance) {
  Ecdf a({1, 2, 3, 4});
  Ecdf b({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(Ecdf::KsDistance(a, b), 0.0);
  Ecdf c({101, 102, 103, 104});
  EXPECT_DOUBLE_EQ(Ecdf::KsDistance(a, c), 1.0);
}

TEST(DkwTest, ReproducesPaperBound) {
  // The paper: 800,000 pairs give sup|Fn - F| <= 0.0196 at 99% confidence.
  EXPECT_NEAR(DkwEpsilon(800000, 0.01), 0.00182, 0.0001);
  // (The paper's 0.0196 corresponds to ~6,900 samples at 99%; our harness
  // reports the bound for whatever sample size is used.)
  EXPECT_NEAR(DkwEpsilon(6900, 0.01), 0.0196, 0.0005);
}

TEST(DkwTest, SampleSizeInvertsEpsilon) {
  size_t n = DkwSampleSize(0.0196, 0.01);
  EXPECT_LE(DkwEpsilon(n, 0.01), 0.0196);
  EXPECT_GT(DkwEpsilon(n - 100, 0.01), 0.0196);
}

TEST(DkwTest, EcdfConvergesWithinBound) {
  // Property: empirical CDF of uniform samples stays within the DKW band
  // around the true CDF (checked at the 99% level with one draw).
  Rng rng(5);
  const size_t n = 20000;
  std::vector<double> xs;
  xs.reserve(n);
  for (size_t i = 0; i < n; ++i) xs.push_back(rng.NextDouble());
  Ecdf f(std::move(xs));
  double eps = DkwEpsilon(n, 0.01);
  double worst = 0;
  for (double x = 0.05; x < 1.0; x += 0.05) {
    worst = std::max(worst, std::fabs(f(x) - x));
  }
  EXPECT_LE(worst, eps * 1.5);  // small slack for grid evaluation
}

TEST(HistogramTest, CountsAndDensity) {
  Histogram h(0, 10, 5);
  for (double x : {0.5, 1.0, 3.0, 9.9, 11.0, -1.0}) h.Add(x);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.Count(0), 3u);  // 0.5, 1.0 (hmm 1.0 -> bin 0? width 2: [0,2))
  EXPECT_EQ(h.Count(1), 1u);  // 3.0
  EXPECT_EQ(h.Count(4), 2u);  // 9.9 + clamped 11.0
  // -1 clamps into bin 0: recount.
  EXPECT_EQ(h.Count(0) + h.Count(1) + h.Count(2) + h.Count(3) + h.Count(4),
            6u);
  // Density integrates to 1.
  double integral = 0;
  for (size_t b = 0; b < h.num_bins(); ++b) {
    integral += h.Density(b) * (h.BinHigh(b) - h.BinLow(b));
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0, 100, 10);
  EXPECT_DOUBLE_EQ(h.BinLow(3), 30);
  EXPECT_DOUBLE_EQ(h.BinHigh(3), 40);
}

TEST(KdeTest, IntegratesToOneAndPeaksAtMode) {
  Rng rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.Normal(50, 5));
  auto kde = GaussianKde(samples, 0, 100, 201);
  ASSERT_EQ(kde.size(), 201u);
  double dx = kde[1].first - kde[0].first;
  double integral = 0;
  double peak_x = 0;
  double peak_y = -1;
  for (const auto& [x, y] : kde) {
    integral += y * dx;
    if (y > peak_y) {
      peak_y = y;
      peak_x = x;
    }
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
  EXPECT_NEAR(peak_x, 50, 3);
}

TEST(KdeTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(GaussianKde({}, 0, 1, 10).empty());
  EXPECT_TRUE(GaussianKde({1.0}, 1, 1, 10).empty());  // hi == lo
  auto k = GaussianKde({1.0, 1.0, 1.0}, 0, 2, 11);    // zero variance
  EXPECT_EQ(k.size(), 11u);
}

TEST(SilvermanTest, ScalesWithSpread) {
  Rng rng(3);
  std::vector<double> narrow;
  std::vector<double> wide;
  for (int i = 0; i < 1000; ++i) {
    narrow.push_back(rng.Normal(0, 1));
    wide.push_back(rng.Normal(0, 10));
  }
  EXPECT_GT(SilvermanBandwidth(wide), SilvermanBandwidth(narrow) * 5);
}

}  // namespace
}  // namespace cfnet::stats
