#include "dfs/dfs.h"

#include <gtest/gtest.h>

#include "dfs/jsonl.h"
#include "util/crc32.h"

namespace cfnet::dfs {
namespace {

DfsConfig SmallConfig() {
  DfsConfig config;
  config.num_datanodes = 4;
  config.block_size = 16;  // force multi-block files
  config.replication = 3;
  return config;
}

TEST(MiniDfsTest, WriteReadRoundTrip) {
  MiniDfs dfs(SmallConfig());
  ASSERT_TRUE(dfs.WriteFile("/a/b.txt", "hello world").ok());
  auto read = dfs.ReadFile("/a/b.txt");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello world");
  EXPECT_TRUE(dfs.Exists("/a/b.txt"));
  EXPECT_FALSE(dfs.Exists("/a/missing"));
}

TEST(MiniDfsTest, EmptyFile) {
  MiniDfs dfs(SmallConfig());
  ASSERT_TRUE(dfs.WriteFile("/empty", "").ok());
  auto read = dfs.ReadFile("/empty");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "");
  EXPECT_EQ(*dfs.FileSize("/empty"), 0u);
}

TEST(MiniDfsTest, MultiBlockSplitting) {
  MiniDfs dfs(SmallConfig());
  std::string data(100, 'x');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>('a' + i % 26);
  ASSERT_TRUE(dfs.WriteFile("/big", data).ok());
  auto blocks = dfs.GetBlockLocations("/big");
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(blocks->size(), 7u);  // ceil(100/16)
  uint64_t total = 0;
  for (const auto& b : *blocks) {
    total += b.length;
    EXPECT_EQ(b.replicas.size(), 3u);
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(*dfs.ReadFile("/big"), data);
}

TEST(MiniDfsTest, OverwriteReplacesContent) {
  MiniDfs dfs(SmallConfig());
  ASSERT_TRUE(dfs.WriteFile("/f", "old content that spans blocks!").ok());
  ASSERT_TRUE(dfs.WriteFile("/f", "new").ok());
  EXPECT_EQ(*dfs.ReadFile("/f"), "new");
  // Old blocks must be freed.
  DfsStats stats = dfs.GetStats();
  EXPECT_EQ(stats.logical_bytes, 3u);
  EXPECT_EQ(stats.physical_bytes, 9u);  // 3 bytes x replication 3
}

TEST(MiniDfsTest, AppendAcrossBlockBoundary) {
  MiniDfs dfs(SmallConfig());
  ASSERT_TRUE(dfs.Append("/log", "0123456789").ok());  // creates
  ASSERT_TRUE(dfs.Append("/log", "abcdefghij").ok());  // crosses 16-byte block
  ASSERT_TRUE(dfs.Append("/log", "KLMNOP").ok());
  EXPECT_EQ(*dfs.ReadFile("/log"), "0123456789abcdefghijKLMNOP");
}

TEST(MiniDfsTest, DeleteRemovesFileAndFreesBlocks) {
  MiniDfs dfs(SmallConfig());
  ASSERT_TRUE(dfs.WriteFile("/f", "data").ok());
  ASSERT_TRUE(dfs.Delete("/f").ok());
  EXPECT_FALSE(dfs.Exists("/f"));
  EXPECT_TRUE(dfs.Delete("/f").IsNotFound());
  EXPECT_EQ(dfs.GetStats().physical_bytes, 0u);
}

TEST(MiniDfsTest, ListByPrefix) {
  MiniDfs dfs(SmallConfig());
  ASSERT_TRUE(dfs.WriteFile("/crawl/a.jsonl", "1").ok());
  ASSERT_TRUE(dfs.WriteFile("/crawl/b.jsonl", "2").ok());
  ASSERT_TRUE(dfs.WriteFile("/other/c.jsonl", "3").ok());
  auto files = dfs.List("/crawl/");
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "/crawl/a.jsonl");
  EXPECT_EQ(files[1], "/crawl/b.jsonl");
  EXPECT_EQ(dfs.List("/nope/").size(), 0u);
}

TEST(MiniDfsTest, PathValidation) {
  MiniDfs dfs(SmallConfig());
  EXPECT_TRUE(dfs.WriteFile("relative", "x").IsInvalidArgument());
  EXPECT_TRUE(dfs.WriteFile("/dir/", "x").IsInvalidArgument());
  EXPECT_TRUE(dfs.ReadFile("").status().IsInvalidArgument());
  EXPECT_TRUE(dfs.ReadFile("/no/such").status().IsNotFound());
}

TEST(MiniDfsTest, ReadsSurviveSingleNodeFailure) {
  MiniDfs dfs(SmallConfig());
  std::string data(64, 'z');
  ASSERT_TRUE(dfs.WriteFile("/f", data).ok());
  ASSERT_TRUE(dfs.KillDataNode(0).ok());
  EXPECT_FALSE(dfs.IsDataNodeAlive(0));
  EXPECT_EQ(*dfs.ReadFile("/f"), data);  // replicas on other nodes
}

TEST(MiniDfsTest, ReadsSurviveReplicationMinusOneFailures) {
  MiniDfs dfs(SmallConfig());
  std::string data(64, 'q');
  ASSERT_TRUE(dfs.WriteFile("/f", data).ok());
  ASSERT_TRUE(dfs.KillDataNode(0).ok());
  ASSERT_TRUE(dfs.KillDataNode(1).ok());
  // Any block had 3 replicas over 4 nodes; with 2 nodes down at least one
  // replica survives.
  EXPECT_EQ(*dfs.ReadFile("/f"), data);
}

TEST(MiniDfsTest, UnderReplicationDetectedAndRepaired) {
  MiniDfs dfs(SmallConfig());
  ASSERT_TRUE(dfs.WriteFile("/f", std::string(40, 'r')).ok());
  ASSERT_TRUE(dfs.KillDataNode(0).ok());
  DfsStats before = dfs.GetStats();
  EXPECT_GT(before.under_replicated_blocks, 0u);
  size_t created = dfs.RunReplicationMonitor();
  EXPECT_GT(created, 0u);
  DfsStats after = dfs.GetStats();
  EXPECT_EQ(after.under_replicated_blocks, 0u);
  EXPECT_EQ(*dfs.ReadFile("/f"), std::string(40, 'r'));
}

TEST(MiniDfsTest, RepairThenOriginalNodeRevives) {
  MiniDfs dfs(SmallConfig());
  ASSERT_TRUE(dfs.WriteFile("/f", std::string(40, 'v')).ok());
  ASSERT_TRUE(dfs.KillDataNode(2).ok());
  dfs.RunReplicationMonitor();
  ASSERT_TRUE(dfs.ReviveDataNode(2).ok());
  // Revived node's stale copies don't break anything; file still reads.
  EXPECT_EQ(*dfs.ReadFile("/f"), std::string(40, 'v'));
  EXPECT_EQ(dfs.GetStats().under_replicated_blocks, 0u);
}

TEST(MiniDfsTest, WriteFailsWithNoLiveNodes) {
  DfsConfig config = SmallConfig();
  config.num_datanodes = 2;
  config.replication = 2;
  MiniDfs dfs(config);
  ASSERT_TRUE(dfs.KillDataNode(0).ok());
  ASSERT_TRUE(dfs.KillDataNode(1).ok());
  EXPECT_TRUE(dfs.WriteFile("/f", "x").IsUnavailable());
}

TEST(MiniDfsTest, ReplicationClampedToNodeCount) {
  DfsConfig config;
  config.num_datanodes = 2;
  config.replication = 5;
  MiniDfs dfs(config);
  ASSERT_TRUE(dfs.WriteFile("/f", "abc").ok());
  auto blocks = dfs.GetBlockLocations("/f");
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ((*blocks)[0].replicas.size(), 2u);
}

TEST(MiniDfsTest, StatsAggregate) {
  MiniDfs dfs(SmallConfig());
  ASSERT_TRUE(dfs.WriteFile("/a", std::string(20, 'a')).ok());
  ASSERT_TRUE(dfs.WriteFile("/b", std::string(10, 'b')).ok());
  DfsStats stats = dfs.GetStats();
  EXPECT_EQ(stats.num_files, 2u);
  EXPECT_EQ(stats.num_blocks, 3u);  // 20 -> 2 blocks, 10 -> 1 block
  EXPECT_EQ(stats.logical_bytes, 30u);
  EXPECT_EQ(stats.physical_bytes, 90u);
  EXPECT_EQ(stats.live_datanodes, 4);
}

TEST(MiniDfsTest, PlacementBalancesAcrossNodes) {
  DfsConfig config = SmallConfig();
  config.replication = 1;
  MiniDfs dfs(config);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        dfs.WriteFile("/f" + std::to_string(i), std::string(16, 'x')).ok());
  }
  // With least-used placement each node should hold ~10 blocks worth.
  DfsStats stats = dfs.GetStats();
  EXPECT_EQ(stats.physical_bytes, 40u * 16);
}

// --- JSON-lines layer -------------------------------------------------------

TEST(JsonlTest, WriteAndReadBack) {
  MiniDfs dfs(SmallConfig());
  {
    JsonLinesWriter writer(&dfs, "/snap/part-0.jsonl", /*flush_bytes=*/32);
    for (int i = 0; i < 10; ++i) {
      json::Json j = json::Json::MakeObject();
      j.Set("i", i);
      ASSERT_TRUE(writer.Write(j).ok());
    }
    ASSERT_TRUE(writer.Flush().ok());
    EXPECT_EQ(writer.records_written(), 10u);
  }
  auto records = ReadJsonLines(dfs, "/snap/part-0.jsonl");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*records)[static_cast<size_t>(i)].Get("i").AsInt(), i);
  }
}

TEST(JsonlTest, DestructorFlushes) {
  MiniDfs dfs(SmallConfig());
  {
    JsonLinesWriter writer(&dfs, "/snap/d.jsonl");
    json::Json j = json::Json::MakeObject();
    j.Set("k", "v");
    ASSERT_TRUE(writer.Write(j).ok());
  }
  auto records = ReadJsonLines(dfs, "/snap/d.jsonl");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
}

TEST(JsonlTest, CorruptLineReported) {
  MiniDfs dfs(SmallConfig());
  ASSERT_TRUE(dfs.WriteFile("/bad.jsonl", "{\"ok\":1}\nnot json\n").ok());
  auto records = ReadJsonLines(dfs, "/bad.jsonl");
  EXPECT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kCorruption);
  EXPECT_NE(records.status().message().find(":2:"), std::string::npos);
}

TEST(JsonlTest, MissingFileIsNotFound) {
  MiniDfs dfs(SmallConfig());
  EXPECT_TRUE(ReadJsonLines(dfs, "/nope.jsonl").status().IsNotFound());
}

}  // namespace
}  // namespace cfnet::dfs

namespace cfnet::dfs {
namespace {

// --- data integrity (checksums, corruption, scrubbing) ---------------------

TEST(DfsIntegrityTest, ReadFailsOverCorruptReplica) {
  MiniDfs dfs(SmallConfig());
  std::string data(40, 'k');
  ASSERT_TRUE(dfs.WriteFile("/f", data).ok());
  auto blocks = dfs.GetBlockLocations("/f");
  ASSERT_TRUE(blocks.ok());
  int victim = (*blocks)[0].replicas[0];
  ASSERT_TRUE(dfs.CorruptReplica("/f", 0, victim).ok());
  // Read still succeeds from the intact replicas and detects corruption.
  EXPECT_EQ(*dfs.ReadFile("/f"), data);
  EXPECT_GE(dfs.GetStats().corruption_events_detected, 1u);
}

TEST(DfsIntegrityTest, AllReplicasCorruptIsIOError) {
  MiniDfs dfs(SmallConfig());
  ASSERT_TRUE(dfs.WriteFile("/f", std::string(8, 'm')).ok());
  auto blocks = dfs.GetBlockLocations("/f");
  ASSERT_TRUE(blocks.ok());
  for (int node : (*blocks)[0].replicas) {
    ASSERT_TRUE(dfs.CorruptReplica("/f", 0, node).ok());
  }
  auto read = dfs.ReadFile("/f");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(DfsIntegrityTest, ScrubRemovesCorruptCopiesAndMonitorRepairs) {
  MiniDfs dfs(SmallConfig());
  std::string data(48, 'p');
  ASSERT_TRUE(dfs.WriteFile("/f", data).ok());
  auto blocks = dfs.GetBlockLocations("/f");
  ASSERT_TRUE(blocks.ok());
  ASSERT_TRUE(dfs.CorruptReplica("/f", 1, (*blocks)[1].replicas[0]).ok());
  ASSERT_TRUE(dfs.CorruptReplica("/f", 2, (*blocks)[2].replicas[1]).ok());

  size_t removed = dfs.ScrubBlocks();
  EXPECT_EQ(removed, 2u);
  DfsStats after_scrub = dfs.GetStats();
  EXPECT_EQ(after_scrub.under_replicated_blocks, 2u);

  EXPECT_GT(dfs.RunReplicationMonitor(), 0u);
  DfsStats repaired = dfs.GetStats();
  EXPECT_EQ(repaired.under_replicated_blocks, 0u);
  EXPECT_EQ(*dfs.ReadFile("/f"), data);
  // Scrubbing again finds nothing.
  EXPECT_EQ(dfs.ScrubBlocks(), 0u);
}

TEST(DfsIntegrityTest, CorruptReplicaArgumentChecks) {
  MiniDfs dfs(SmallConfig());
  ASSERT_TRUE(dfs.WriteFile("/f", "abc").ok());
  EXPECT_TRUE(dfs.CorruptReplica("/missing", 0, 0).IsNotFound());
  EXPECT_EQ(dfs.CorruptReplica("/f", 9, 0).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(dfs.CorruptReplica("/f", 0, 99).IsInvalidArgument());
}

}  // namespace
}  // namespace cfnet::dfs

namespace cfnet {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard test vector: CRC-32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = 0;
  crc = Crc32Update(crc, data.substr(0, 10));
  crc = Crc32Update(crc, data.substr(10));
  EXPECT_EQ(crc, Crc32(data));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(1000, 'a');
  uint32_t original = Crc32(data);
  data[500] = static_cast<char>(data[500] ^ 1);
  EXPECT_NE(Crc32(data), original);
}

}  // namespace
}  // namespace cfnet
