#include <set>

#include <gtest/gtest.h>

#include "core/engagement_analysis.h"
#include "core/experiments.h"
#include "core/investor_graph.h"
#include "core/platform.h"

namespace cfnet::core {
namespace {

/// End-to-end fixture: one small world crawled once, analyses derived from
/// the snapshots — the full Figure 2 pipeline.
class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExploratoryPlatform::Options options;
    options.world.scale = 0.004;
    options.world.seed = 123;
    options.crawl.num_workers = 4;
    platform_ = new ExploratoryPlatform(options);
    ASSERT_TRUE(platform_->CollectData().ok());
    auto inputs = platform_->LoadInputs();
    ASSERT_TRUE(inputs.ok()) << inputs.status();
    inputs_ = new AnalysisInputs(std::move(inputs).value());
    community::CodaConfig coda;
    coda.num_communities = 32;
    coda.max_iterations = 20;
    suite_ = new ExperimentSuite(platform_->context(), *inputs_, coda);
  }
  static void TearDownTestSuite() {
    delete suite_;
    delete inputs_;
    delete platform_;
    suite_ = nullptr;
    inputs_ = nullptr;
    platform_ = nullptr;
  }

  static ExploratoryPlatform& platform() { return *platform_; }
  static const AnalysisInputs& inputs() { return *inputs_; }
  static ExperimentSuite& suite() { return *suite_; }

 private:
  static ExploratoryPlatform* platform_;
  static AnalysisInputs* inputs_;
  static ExperimentSuite* suite_;
};

ExploratoryPlatform* PipelineFixture::platform_ = nullptr;
AnalysisInputs* PipelineFixture::inputs_ = nullptr;
ExperimentSuite* PipelineFixture::suite_ = nullptr;

TEST_F(PipelineFixture, LoadInputsMatchesCrawlReport) {
  const auto& report = platform().crawl_report();
  EXPECT_EQ(static_cast<int64_t>(inputs().startups.size()),
            report.companies_crawled);
  EXPECT_EQ(static_cast<int64_t>(inputs().users.size()), report.users_crawled);
  EXPECT_EQ(static_cast<int64_t>(inputs().crunchbase.size()),
            report.crunchbase_profiles);
  EXPECT_EQ(static_cast<int64_t>(inputs().facebook.size()),
            report.facebook_profiles);
  EXPECT_EQ(static_cast<int64_t>(inputs().twitter.size()),
            report.twitter_profiles);
}

TEST_F(PipelineFixture, LoadInputsRequiresCollect) {
  ExploratoryPlatform::Options options;
  options.world.scale = 0.002;
  ExploratoryPlatform fresh(options);
  auto inputs = fresh.LoadInputs();
  EXPECT_FALSE(inputs.ok());
  EXPECT_EQ(inputs.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PipelineFixture, MergedInvestorGraphEqualsGroundTruth) {
  // The AngelList+CrunchBase merge must recover exactly the ground-truth
  // investment edge set (by construction: hidden AL edges are in rounds).
  const graph::BipartiteGraph& g = suite().investor_graph();
  const auto& world = platform().world();
  size_t truth_edges = 0;
  for (const auto& u : world.users()) {
    truth_edges += u.investments.size();
    if (u.investments.empty()) continue;
    uint32_t l = g.LeftIndexOf(u.id);
    ASSERT_NE(l, graph::BipartiteGraph::kInvalidIndex) << "investor " << u.id;
    ASSERT_EQ(g.OutDegree(l), u.investments.size());
    for (synth::CompanyId c : u.investments) {
      uint32_t r = g.RightIndexOf(c);
      ASSERT_NE(r, graph::BipartiteGraph::kInvalidIndex);
      auto nbrs = g.OutNeighbors(l);
      EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), r));
    }
  }
  EXPECT_EQ(g.num_edges(), truth_edges);
}

TEST_F(PipelineFixture, EdgeProvenanceShowsBothSourcesNeeded) {
  EdgeProvenance p = ComputeEdgeProvenance(platform().context(), inputs());
  EXPECT_LT(p.angellist_edges, p.merged_unique_edges);  // AL alone incomplete
  EXPECT_LT(p.crunchbase_edges, p.merged_unique_edges);
  EXPECT_EQ(p.merged_unique_edges, suite().investor_graph().num_edges());
}

TEST_F(PipelineFixture, EngagementTableInternallyConsistent) {
  EngagementTable table = suite().RunEngagementTable();
  EXPECT_EQ(table.total_companies,
            static_cast<int64_t>(inputs().startups.size()));

  const auto* none = table.FindRow("No social media presence");
  const auto* fb = table.FindRow("Facebook");
  const auto* tw = table.FindRow("Twitter");
  const auto* both = table.FindRow("Facebook and Twitter");
  const auto* video = table.FindRow("Presence of demo video");
  const auto* no_video = table.FindRow("No demo video");
  ASSERT_NE(none, nullptr);
  ASSERT_NE(fb, nullptr);
  ASSERT_NE(tw, nullptr);
  ASSERT_NE(both, nullptr);
  ASSERT_NE(video, nullptr);
  ASSERT_NE(no_video, nullptr);

  // Inclusion-exclusion over the presence cells.
  EXPECT_EQ(none->num_companies + fb->num_companies + tw->num_companies -
                both->num_companies,
            table.total_companies);
  EXPECT_EQ(video->num_companies + no_video->num_companies,
            table.total_companies);

  // Social presence dominates the success signal.
  EXPECT_GT(fb->success_pct, 5 * none->success_pct);
  EXPECT_GT(tw->success_pct, 5 * none->success_pct);
  EXPECT_GT(video->success_pct, no_video->success_pct);

  // Engagement categories are subsets of the presence categories.
  const auto* fb_hi = table.FindRow("Facebook (likes > median)");
  ASSERT_NE(fb_hi, nullptr);
  EXPECT_LT(fb_hi->num_companies, fb->num_companies);
  EXPECT_GT(fb_hi->success_pct, fb->success_pct);

  // Above-median shares land in the paper's 40-50% band of presence.
  double share = static_cast<double>(fb_hi->num_companies) /
                 static_cast<double>(fb->num_companies);
  EXPECT_GT(share, 0.3);
  EXPECT_LT(share, 0.55);

  EXPECT_GT(table.fb_likes_median, 0);
  EXPECT_GT(table.tw_tweets_median, 0);
  EXPECT_GT(table.tw_followers_median, 0);
}

TEST_F(PipelineFixture, EngagementSuccessMatchesCrunchBase) {
  EngagementTable table = suite().RunEngagementTable();
  std::set<uint64_t> funded;
  for (const auto& r : inputs().crunchbase) {
    if (r.funded()) funded.insert(r.angellist_id);
  }
  EXPECT_EQ(table.funded_companies, static_cast<int64_t>(funded.size()));
}

TEST_F(PipelineFixture, DatasetStatsMatchTruthRoles) {
  DatasetStatsResult stats = suite().RunDatasetStats();
  const auto& world = platform().world();
  synth::WorldStats truth = world.ComputeStats();
  // The crawl reaches ~everything, so role counts track the truth closely.
  EXPECT_NEAR(static_cast<double>(stats.investors),
              static_cast<double>(truth.num_investors),
              truth.num_investors * 0.05 + 2.0);
  EXPECT_NEAR(static_cast<double>(stats.founders),
              static_cast<double>(truth.num_founders),
              truth.num_founders * 0.05 + 2.0);
  EXPECT_GT(stats.investor_pct, 2.0);
  EXPECT_LT(stats.investor_pct, 8.0);
}

TEST_F(PipelineFixture, Fig3DegreesAndConcentration) {
  Fig3Result fig3 = suite().RunFig3();
  EXPECT_GT(fig3.num_investors, 50u);
  EXPECT_GT(fig3.num_edges, fig3.num_investors);  // mean degree > 1
  EXPECT_EQ(fig3.degrees.median, 1.0);
  EXPECT_GT(fig3.degrees.mean, 2.0);
  EXPECT_LT(fig3.degrees.mean, 5.0);

  ASSERT_EQ(fig3.degrees.concentration.size(), 3u);
  // Concentration rows are monotone: fewer nodes hold fewer (but still
  // disproportionate) edges.
  const auto& c3 = fig3.degrees.concentration[0];
  const auto& c4 = fig3.degrees.concentration[1];
  const auto& c5 = fig3.degrees.concentration[2];
  EXPECT_GT(c3.node_fraction, c4.node_fraction);
  EXPECT_GT(c4.node_fraction, c5.node_fraction);
  EXPECT_GT(c3.edge_fraction, c4.edge_fraction);
  EXPECT_GT(c4.edge_fraction, c5.edge_fraction);
  // Heavy concentration: the >=3 cohort holds far more edge share than
  // node share (paper: 30% of investors hold 75% of edges).
  EXPECT_GT(c3.edge_fraction, c3.node_fraction * 1.8);

  // CDF is monotone and ends at 1.
  for (size_t i = 1; i < fig3.investment_cdf.size(); ++i) {
    EXPECT_GT(fig3.investment_cdf[i].x, fig3.investment_cdf[i - 1].x);
    EXPECT_GE(fig3.investment_cdf[i].p, fig3.investment_cdf[i - 1].p);
  }
  EXPECT_DOUBLE_EQ(fig3.investment_cdf.back().p, 1.0);

  EXPECT_GT(fig3.mean_investor_follows, 50);  // calibrated to ~247
}

TEST_F(PipelineFixture, Fig4StrongCommunitiesAndGlobalCurve) {
  Fig4Result fig4 = suite().RunFig4(3, 20000);
  EXPECT_GT(fig4.num_communities, 0u);
  ASSERT_FALSE(fig4.strongest.empty());
  // Strong communities sorted by descending mean shared size.
  for (size_t i = 1; i < fig4.strongest.size(); ++i) {
    EXPECT_GE(fig4.strongest[i - 1].mean_shared, fig4.strongest[i].mean_shared);
  }
  // Strong communities herd far above the global average.
  double global_mean = 0;
  // Approximate global mean from the curve is awkward; use metric directly:
  EXPECT_GT(fig4.strongest[0].mean_shared, 0.5);
  EXPECT_GT(fig4.strongest[0].max_shared, fig4.strongest[0].mean_shared);
  EXPECT_EQ(fig4.global_pairs, 20000u);
  EXPECT_NEAR(fig4.dkw_epsilon, 0.0115, 0.002);  // DKW at n=20k, 99%
  EXPECT_FALSE(fig4.global_curve.empty());
  EXPECT_DOUBLE_EQ(fig4.global_curve.back().p, 1.0);
  (void)global_mean;
}

TEST_F(PipelineFixture, Fig5CommunityPercentsBeatRandom) {
  Fig5Result fig5 = suite().RunFig5();
  ASSERT_FALSE(fig5.community_percents.empty());
  for (double p : fig5.community_percents) {
    EXPECT_GE(p, 0);
    EXPECT_LE(p, 100);
  }
  EXPECT_GT(fig5.mean_percent, 0);
  EXPECT_FALSE(fig5.kde.empty());
}

TEST_F(PipelineFixture, Fig7ProducesRenderableViz) {
  Fig7Result fig7 = suite().RunFig7(/*min_community_size=*/5);
  EXPECT_GT(fig7.strong.num_investors, 0u);
  EXPECT_GE(fig7.strong.mean_shared, fig7.weak.mean_shared);
  EXPECT_NE(fig7.strong.svg.find("<svg"), std::string::npos);
  EXPECT_NE(fig7.strong.dot.find("graph community_"), std::string::npos);
  EXPECT_NE(fig7.weak.svg.find("</svg>"), std::string::npos);
}

TEST_F(PipelineFixture, SnapshotDatasetLoadsViaDataflow) {
  auto ds = platform().LoadSnapshotDataset(
      platform().crawler().StartupSnapshotDir());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->Count(), inputs().startups.size());
}

}  // namespace
}  // namespace cfnet::core
