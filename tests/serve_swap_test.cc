#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/platform.h"
#include "net/fault_plan.h"
#include "serve/epoch_store.h"
#include "serve/service.h"
#include "serve/serving_snapshot.h"

namespace cfnet::serve {
namespace {

/// Self-checking payload: `check` is a pure function of (value, epoch), so a
/// reader that ever observes a half-written or reclaimed snapshot fails the
/// invariant instead of silently reading garbage.
struct Sealed {
  uint64_t value = 0;
  uint64_t epoch_tag = 0;
  uint64_t check = 0;
  std::vector<uint64_t> payload;  // forces real allocation per snapshot

  static std::unique_ptr<const Sealed> Make(uint64_t value, uint64_t epoch) {
    auto s = std::make_unique<Sealed>();
    s->value = value;
    s->epoch_tag = epoch;
    s->check = value * 0x9e3779b97f4a7c15ull + epoch;
    s->payload.assign(256, value);
    return s;
  }
  bool Consistent() const {
    if (check != value * 0x9e3779b97f4a7c15ull + epoch_tag) return false;
    for (uint64_t v : payload) {
      if (v != value) return false;
    }
    return true;
  }
};

TEST(EpochStoreTest, PublishRetiresAndReclaimsUnpinned) {
  EpochStore<Sealed> store;
  EXPECT_FALSE(store.Acquire());
  EXPECT_EQ(store.Publish(Sealed::Make(10, 1)), 1u);
  EXPECT_EQ(store.current_epoch(), 1u);
  EXPECT_EQ(store.Publish(Sealed::Make(20, 2)), 2u);
  // No pins were held: the first epoch was reclaimed by the second Publish.
  EXPECT_EQ(store.retired(), 1u);
  EXPECT_EQ(store.live_epochs(), 1u);
  auto pin = store.Acquire();
  ASSERT_TRUE(pin);
  EXPECT_EQ(pin->value, 20u);
  EXPECT_EQ(pin.epoch(), 2u);
}

TEST(EpochStoreTest, PinnedEpochSurvivesSwap) {
  EpochStore<Sealed> store;
  store.Publish(Sealed::Make(10, 1));
  auto pin = store.Acquire();
  ASSERT_TRUE(pin);
  store.Publish(Sealed::Make(20, 2));
  store.Sweep();
  // The in-flight pin keeps epoch 1 alive and intact...
  EXPECT_EQ(pin->value, 10u);
  EXPECT_TRUE(pin->Consistent());
  EXPECT_EQ(store.live_epochs(), 2u);
  // ...while new readers see epoch 2.
  auto fresh = store.Acquire();
  EXPECT_EQ(fresh->value, 20u);
  // Once the pin drains, the retired epoch is reclaimed.
  pin = EpochStore<Sealed>::Pin{};
  EXPECT_EQ(store.live_pins(), 1);  // only `fresh`
  store.Sweep();
  EXPECT_EQ(store.live_epochs(), 1u);
  EXPECT_EQ(store.retired(), 1u);
}

/// The satellite's headline race: ~1000 concurrent queries against a
/// publisher hot-swapping snapshots. No torn reads, every pinned snapshot
/// internally consistent, all pins drained, every retired epoch reclaimed.
TEST(EpochStoreTest, SwapRacingConcurrentReadersNeverTears) {
  EpochStore<Sealed> store;
  store.Publish(Sealed::Make(1, 1));

  constexpr int kReaders = 8;
  constexpr int kAcquiresPerReader = 125;  // 1000 total pinned reads
  constexpr int kPublishes = 300;
  std::atomic<bool> stop_publisher{false};
  std::atomic<int64_t> torn{0};

  std::thread publisher([&] {
    for (uint64_t i = 2; i <= kPublishes && !stop_publisher.load(); ++i) {
      store.Publish(Sealed::Make(i, i));
      if (i % 16 == 0) std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kAcquiresPerReader; ++i) {
        auto pin = store.Acquire();
        if (!pin) continue;
        // Hold the pin across real work; the snapshot must stay intact
        // even if the publisher retires this epoch meanwhile.
        if (!pin->Consistent() || pin.epoch() != pin->epoch_tag) {
          torn.fetch_add(1);
        }
        if (i % 8 == 0) std::this_thread::yield();
        if (!pin->Consistent()) torn.fetch_add(1);
      }
    });
  }
  for (auto& r : readers) r.join();
  stop_publisher.store(true);
  publisher.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(store.live_pins(), 0);  // every pin refcount drained
  store.Sweep();
  // Everything but the current epoch was reclaimed.
  EXPECT_EQ(store.live_epochs(), 1u);
  EXPECT_EQ(store.retired(), store.published() - 1);
}

// ---------------------------------------------------------------------------
// Full service under swap: responses are never a mix of two snapshots, and
// the epoch-keyed cache never serves old-epoch bytes after invalidation.

graph::BipartiteGraph SwapGraph(uint64_t flavor) {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (uint64_t inv = 1; inv <= 20; ++inv) {
    for (uint64_t c = 0; c < 4; ++c) {
      edges.emplace_back(inv, 100 + (inv * (flavor + 2) + c * 7) % 12);
    }
  }
  return graph::BipartiteGraph::FromEdges(edges);
}

std::unique_ptr<const ServingSnapshot> SwapSnapshot(uint64_t epoch) {
  SnapshotBuildOptions opts;
  opts.investor_name = [](uint64_t id) {
    return "investor-" + std::to_string(id);
  };
  return BuildServingSnapshot(epoch, SwapGraph(epoch), opts);
}

TEST(ServeSwapTest, QueriesRacingSwapsStayConsistentAndCacheStaysFresh) {
  EpochStore<ServingSnapshot> store;
  store.Publish(SwapSnapshot(1));
  QueryServiceConfig config;
  config.worker_threads = 4;
  config.recommend.default_deadline_micros = 5'000'000;
  config.search.default_deadline_micros = 5'000'000;
  config.facet.default_deadline_micros = 5'000'000;
  config.search.queue_capacity = 4096;
  config.recommend.queue_capacity = 4096;
  config.facet.queue_capacity = 4096;
  QueryService service(&store, std::move(config));

  // epoch -> content fingerprint, as observed in response bodies. Any epoch
  // mapping to two fingerprints (or a body disagreeing with its transport
  // epoch) is a torn view.
  std::mutex mu;
  std::map<uint64_t, uint64_t> epoch_fp;
  std::atomic<int64_t> torn{0};
  std::atomic<int64_t> answered{0};

  constexpr int kClients = 5;
  constexpr int kPerClient = 200;  // 1000 concurrent queries total
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerClient; ++i) {
        QueryRequest req;
        switch ((t + i) % 3) {
          case 0:
            req = QueryRequest("investors.search",
                               {{"q", "investor-1"}, {"k", "5"}});
            break;
          case 1:
            req = QueryRequest("investors.similar",
                               {{"investor_id", std::to_string(1 + i % 20)},
                                {"k", "5"}});
            break;
          default:
            req = QueryRequest("facets.communities");
        }
        QueryResponse resp = service.Call(std::move(req));
        if (resp.status != 200) continue;
        answered.fetch_add(1);
        const uint64_t body_epoch =
            static_cast<uint64_t>(resp.body->Get("epoch").AsInt());
        const uint64_t body_fp =
            static_cast<uint64_t>(resp.body->Get("fingerprint").AsInt());
        if (body_epoch != resp.epoch) {
          torn.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> lock(mu);
        auto [it, inserted] = epoch_fp.emplace(body_epoch, body_fp);
        if (!inserted && it->second != body_fp) torn.fetch_add(1);
      }
    });
  }

  // Publisher: hot-swap snapshots while the clients hammer the service.
  std::atomic<bool> done{false};
  std::thread publisher([&] {
    uint64_t epoch = 2;
    while (!done.load()) {
      store.Publish(SwapSnapshot(epoch++));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (auto& c : clients) c.join();
  done.store(true);
  publisher.join();
  service.Shutdown();

  EXPECT_GT(answered.load(), 0);
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(epoch_fp.size(), 1u) << "publisher never swapped during the run";

  // Pins all drained; retired epochs reclaimable down to the current one.
  EXPECT_EQ(store.live_pins(), 0);
  store.Sweep();
  EXPECT_EQ(store.live_epochs(), 1u);

  // Cache stayed epoch-fresh: hits can only have come from live-epoch
  // entries, and after the final sweep a fresh query maps to the newest
  // epoch's fingerprint.
  EpochStore<ServingSnapshot>::Pin current = store.Acquire();
  ASSERT_TRUE(current);
  QueryServiceConfig verify_config;
  verify_config.worker_threads = 1;
  QueryService verify(&store, std::move(verify_config));
  QueryResponse fresh = verify.Call(
      QueryRequest("investors.search", {{"q", "investor-1"}, {"k", "5"}}));
  ASSERT_EQ(fresh.status, 200);
  EXPECT_EQ(fresh.epoch, current.epoch());
  EXPECT_EQ(static_cast<uint64_t>(fresh.body->Get("fingerprint").AsInt()),
            current->content_fingerprint);
}

// ---------------------------------------------------------------------------
// Incremental epoch publication under load: a real crawl round drives the
// platform's delta-scanned AdvanceEpoch, each epoch's maintained artifacts
// are assembled into a serving snapshot and hot-swapped while clients
// hammer the service — zero torn responses, and the incremental build is
// visible in the service's epoch counters.

TEST(ServeSwapTest, IncrementalEpochsPublishUnderQueryLoadWithoutTearing) {
  core::ExploratoryPlatform::Options options;
  options.world.scale = 0.002;
  options.world.seed = 11;
  options.crawl.num_workers = 2;
  options.incremental_epochs = true;
  options.epoch_config.full_rebuild_delta_fraction = 1.1;
  core::ExploratoryPlatform platform(options);

  // CrunchBase starts hard-down: its fetches dead-letter, so the baseline
  // epoch carries AngelList edges only and the replay later produces a
  // genuine delta batch.
  net::FaultPlan outage;
  outage.error_bursts = {{0, 365ll * 24 * 3600 * 1000000ll, 1.0}};
  platform.web().crunchbase().set_fault_plan(outage);
  ASSERT_TRUE(platform.CollectData().ok());

  EpochStore<ServingSnapshot> store;
  QueryServiceConfig config;
  config.worker_threads = 2;
  config.search.default_deadline_micros = 5'000'000;
  config.facet.default_deadline_micros = 5'000'000;
  config.search.queue_capacity = 4096;
  config.facet.queue_capacity = 4096;
  QueryService service(&store, std::move(config));

  SnapshotBuildOptions build;
  const synth::World& world = platform.world();
  build.investor_name = [&world](uint64_t id) {
    const synth::UserTruth* u = world.FindUser(id);
    return u != nullptr ? u->name : "investor-" + std::to_string(id);
  };
  build.company_name = [&world](uint64_t id) {
    const synth::CompanyTruth* c = world.FindCompany(id);
    return c != nullptr ? c->name : "company-" + std::to_string(id);
  };

  // Publishes the maintainer's current artifacts as a serving snapshot and
  // feeds the build accounting into the service's epoch counters. The
  // snapshot's embedded epoch must match the store's assignment (the torn
  // check compares body epoch against the pinned transport epoch).
  uint64_t serving_epoch = 0;
  auto publish_epoch = [&]() {
    const core::EpochArtifacts& arts = platform.epoch_maintainer()->artifacts();
    const uint64_t published = store.Publish(AssembleServingSnapshot(
        ++serving_epoch, arts.graph, arts.projection, arts.community_labels,
        arts.communities, build));
    ASSERT_EQ(published, serving_epoch);
    const core::EpochBuildReport& report = platform.last_epoch_report().build;
    service.RecordEpochBuild(report.build_ms, report.incremental);
  };

  auto first = platform.AdvanceEpoch();
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->full_rebuild);
  publish_epoch();

  // Clients hammer the service across the swap.
  std::mutex mu;
  std::map<uint64_t, uint64_t> epoch_fp;
  std::atomic<int64_t> torn{0};
  std::atomic<int64_t> answered{0};
  std::atomic<bool> stop{false};
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; !stop.load() || i < 50; ++i) {
        if (i >= 400) break;
        QueryRequest req = (t + i) % 2 == 0
                               ? QueryRequest("investors.search",
                                              {{"q", "a"}, {"k", "5"}})
                               : QueryRequest("facets.communities");
        QueryResponse resp = service.Call(std::move(req));
        if (resp.status != 200) continue;
        answered.fetch_add(1);
        const uint64_t body_epoch =
            static_cast<uint64_t>(resp.body->Get("epoch").AsInt());
        const uint64_t body_fp =
            static_cast<uint64_t>(resp.body->Get("fingerprint").AsInt());
        if (body_epoch != resp.epoch) {
          torn.fetch_add(1);
          continue;
        }
        std::lock_guard<std::mutex> lock(mu);
        auto [it, inserted] = epoch_fp.emplace(body_epoch, body_fp);
        if (!inserted && it->second != body_fp) torn.fetch_add(1);
      }
    });
  }

  // Mid-load: CrunchBase recovers, the dead letters replay, and the next
  // AdvanceEpoch publishes an incremental epoch.
  platform.web().crunchbase().set_fault_plan({});
  ASSERT_TRUE(platform.crawler().ReplayDeadLetters().ok());
  auto replayed = platform.AdvanceEpoch();
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_TRUE(replayed->build.incremental);
  EXPECT_GT(replayed->build.delta_edges, 0u);
  publish_epoch();

  stop.store(true);
  for (auto& c : clients) c.join();
  service.Shutdown();

  EXPECT_GT(answered.load(), 0);
  EXPECT_EQ(torn.load(), 0);

  // The incremental build surfaced in the epoch counters.
  json::Json stats = service.StatsJson();
  EXPECT_GE(stats.Get("epochs").Get("epochs_incremental").AsInt(), 1);
  EXPECT_GE(stats.Get("epochs").Get("epochs_full").AsInt(), 1);

  EXPECT_EQ(store.live_pins(), 0);
  store.Sweep();
  EXPECT_EQ(store.live_epochs(), 1u);
}

}  // namespace
}  // namespace cfnet::serve
