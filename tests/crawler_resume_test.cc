// Crash-safe checkpointing tests: checkpoint wire-format roundtrip and
// corruption fallback, plus the acceptance scenario — a crawl killed
// mid-BFS under a fault plan resumes to exactly the uninterrupted result
// with zero duplicate snapshot records.

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crawler/checkpoint.h"
#include "crawler/crawler.h"
#include "dfs/jsonl.h"
#include "net/fault_plan.h"
#include "net/social_web.h"
#include "synth/world.h"

namespace cfnet::crawler {
namespace {

constexpr int64_t kSecond = 1000000;

struct TestBed {
  std::unique_ptr<synth::World> world;
  std::unique_ptr<net::SocialWeb> web;
  std::unique_ptr<dfs::MiniDfs> dfs;
  std::unique_ptr<Crawler> crawler;
};

TestBed MakeTestBed(net::SocialWebConfig web_config = {},
                    CrawlConfig config = {}, double scale = 0.002) {
  TestBed bed;
  synth::WorldConfig wc;
  wc.scale = scale;
  wc.seed = 99;
  bed.world = std::make_unique<synth::World>(synth::World::Generate(wc));
  bed.web = std::make_unique<net::SocialWeb>(bed.world.get(), web_config);
  bed.dfs = std::make_unique<dfs::MiniDfs>();
  config.num_workers = 4;
  bed.crawler =
      std::make_unique<Crawler>(bed.web.get(), bed.dfs.get(), config);
  return bed;
}

/// Error-free services so run outcomes are exactly reproducible and any
/// faults come only from installed FaultPlans.
net::SocialWebConfig NoRandomErrors() {
  net::ServiceConfig plain;
  plain.transient_error_rate = 0;
  net::ServiceConfig with_token = plain;
  with_token.requires_token = true;
  net::SocialWebConfig wc;
  wc.angellist = plain;
  wc.crunchbase = plain;
  wc.facebook = with_token;
  wc.twitter = with_token;
  return wc;
}

/// Collects every "id" across the part-files of a snapshot directory,
/// asserting none appears twice (exactly-once snapshot records).
std::set<int64_t> UniqueSnapshotIds(const dfs::MiniDfs& dfs,
                                    const std::string& dir) {
  std::set<int64_t> ids;
  for (const std::string& path : dfs.List(dir)) {
    auto records = dfs::ReadJsonLines(dfs, path);
    EXPECT_TRUE(records.ok()) << path;
    if (!records.ok()) continue;
    for (const json::Json& r : *records) {
      int64_t id = r.Get("id").AsInt();
      EXPECT_TRUE(ids.insert(id).second)
          << "duplicate snapshot record id " << id << " in " << dir;
    }
  }
  return ids;
}

CheckpointState SampleState() {
  CheckpointState st;
  st.phase = std::string(kPhaseCrunchBase);
  st.phase_cursor = 42;
  st.bfs_round = 7;
  st.company_frontier = {3, 1, 4};
  st.user_frontier = {15, 9};
  st.seen_companies = {1, 3, 4};
  st.seen_users = {9, 15};
  CrawledCompany cc;
  cc.id = 3;
  cc.name = "acme";
  cc.twitter_url = "https://twitter.com/acme";
  cc.crunchbase_url = "https://crunchbase.com/organization/acme";
  st.companies = {cc};
  st.twitter_tokens = {"tok-a", "tok-b"};
  st.facebook_token = "fb-long-lived";
  st.worker_clocks = {100, 250, 90};
  st.snapshot_counts = {{"/crawl/angellist/startups/part-0.jsonl", 12},
                        {"/crawl/angellist/users/part-1.jsonl", 34}};
  st.report.companies_crawled = 11;
  st.report.crunchbase_profiles = 5;
  st.report.fetch.requests = 123;
  st.report.fetch.retries = 4;
  st.report.breaker_trips = 2;
  st.report.checkpoint_writes = 3;
  st.report.dead_lettered_ids = 1;
  st.report.degraded_phases.push_back(
      {std::string(kPhaseTwitter), 3, 17, "budget exceeded"});
  return st;
}

TEST(CheckpointStoreTest, SerializeDeserializeRoundtrip) {
  CheckpointState st = SampleState();
  st.seq = 9;
  auto back = CheckpointStore::Deserialize(CheckpointStore::Serialize(st));
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->seq, 9);
  EXPECT_EQ(back->phase, kPhaseCrunchBase);
  EXPECT_EQ(back->phase_cursor, 42);
  EXPECT_EQ(back->bfs_round, 7);
  EXPECT_EQ(back->company_frontier, st.company_frontier);
  EXPECT_EQ(back->user_frontier, st.user_frontier);
  EXPECT_EQ(back->seen_companies, st.seen_companies);
  EXPECT_EQ(back->seen_users, st.seen_users);
  ASSERT_EQ(back->companies.size(), 1u);
  EXPECT_EQ(back->companies[0].id, 3u);
  EXPECT_EQ(back->companies[0].name, "acme");
  EXPECT_EQ(back->companies[0].twitter_url, st.companies[0].twitter_url);
  EXPECT_EQ(back->twitter_tokens, st.twitter_tokens);
  EXPECT_EQ(back->facebook_token, "fb-long-lived");
  EXPECT_EQ(back->worker_clocks, st.worker_clocks);
  EXPECT_EQ(back->snapshot_counts, st.snapshot_counts);
  EXPECT_EQ(back->report.companies_crawled, 11);
  EXPECT_EQ(back->report.crunchbase_profiles, 5);
  EXPECT_EQ(back->report.fetch.requests, 123);
  EXPECT_EQ(back->report.fetch.retries, 4);
  EXPECT_EQ(back->report.breaker_trips, 2);
  EXPECT_EQ(back->report.checkpoint_writes, 3);
  ASSERT_EQ(back->report.degraded_phases.size(), 1u);
  EXPECT_EQ(back->report.degraded_phases[0].phase, kPhaseTwitter);
  EXPECT_EQ(back->report.degraded_phases[0].dead_lettered, 17);
}

TEST(CheckpointStoreTest, DeserializeRejectsTamperedBytes) {
  std::string wire = CheckpointStore::Serialize(SampleState());
  // Flip one payload byte: the CRC must catch it.
  std::string tampered = wire;
  tampered[wire.size() - 2] ^= 0x01;
  EXPECT_FALSE(CheckpointStore::Deserialize(tampered).ok());
  // Truncation (torn write) is also rejected.
  EXPECT_FALSE(
      CheckpointStore::Deserialize(wire.substr(0, wire.size() / 2)).ok());
  EXPECT_FALSE(CheckpointStore::Deserialize("not a checkpoint").ok());
}

TEST(CheckpointStoreTest, SavePrunesAndLoadSkipsCorruptFiles) {
  dfs::MiniDfs dfs;
  CheckpointStore store(&dfs, "/ckpt", /*keep=*/2);

  CheckpointState a = SampleState();
  a.bfs_round = 1;
  ASSERT_TRUE(store.Save(&a).ok());
  CheckpointState b = SampleState();
  b.bfs_round = 2;
  ASSERT_TRUE(store.Save(&b).ok());
  CheckpointState c = SampleState();
  c.bfs_round = 3;
  ASSERT_TRUE(store.Save(&c).ok());

  // Only `keep` files survive, oldest pruned.
  std::vector<std::string> files = store.ListFiles();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_LT(a.seq, b.seq);
  EXPECT_LT(b.seq, c.seq);

  // Newest wins while it is intact...
  auto latest = store.LoadLatestValid();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->bfs_round, 3);

  // ...a torn newest file falls back to the previous checkpoint...
  ASSERT_TRUE(dfs.WriteFile(files.back(), "CFNETCKPT1 torn write").ok());
  auto fallback = store.LoadLatestValid();
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback->bfs_round, 2);

  // ...and with every file corrupt there is nothing to resume from.
  ASSERT_TRUE(dfs.WriteFile(files.front(), "junk").ok());
  EXPECT_FALSE(store.LoadLatestValid().ok());
}

TEST(CheckpointStoreTest, SequenceContinuesAcrossStoreInstances) {
  dfs::MiniDfs dfs;
  CheckpointState a = SampleState();
  {
    CheckpointStore store(&dfs, "/ckpt", 2);
    ASSERT_TRUE(store.Save(&a).ok());
  }
  // A new incarnation must not reuse (and thereby clobber) sequence numbers.
  CheckpointStore store(&dfs, "/ckpt", 2);
  CheckpointState b = SampleState();
  ASSERT_TRUE(store.Save(&b).ok());
  EXPECT_GT(b.seq, a.seq);
  EXPECT_EQ(store.ListFiles().size(), 2u);
}

TEST(CrawlerResumeTest, ResumeWithoutCheckpointRunsFresh) {
  TestBed bed = MakeTestBed(NoRandomErrors());
  ASSERT_TRUE(bed.crawler->Resume().ok());
  const CrawlReport& report = bed.crawler->report();
  EXPECT_EQ(report.checkpoint_restores, 0);
  EXPECT_GT(report.checkpoint_writes, 0);
  EXPECT_GT(report.companies_crawled, 0);
  EXPECT_GT(report.twitter_profiles, 0);
}

// The acceptance scenario: a crawl killed mid-BFS (while riding out a
// scripted AngelList error burst) is resumed by a fresh Crawler instance
// and finishes with exactly the counts of an uninterrupted run, without
// duplicating a single snapshot record.
TEST(CrawlerResumeTest, KilledMidBfsResumesToUninterruptedResult) {
  net::FaultPlan burst;  // AngelList flaky for the first virtual seconds
  burst.error_bursts = {{0, 2 * kSecond, 1.0}};

  // Uninterrupted baseline.
  CrawlConfig config;
  config.checkpoint_every_rounds = 2;
  config.checkpoint_chunk = 64;
  TestBed clean = MakeTestBed(NoRandomErrors(), config);
  clean.web->angellist().set_fault_plan(burst);
  ASSERT_TRUE(clean.crawler->Run().ok());
  const CrawlReport& want = clean.crawler->report();
  ASSERT_GT(want.bfs_rounds, 3);  // the crash below lands mid-BFS

  // Same crawl, killed after BFS round 3 (checkpoint taken at round 2, so
  // round-3 work is lost and must be redone without duplication).
  TestBed bed = MakeTestBed(NoRandomErrors(), config);
  bed.web->angellist().set_fault_plan(burst);
  CrawlConfig crash_config = config;
  crash_config.crash_after_bfs_rounds = 3;
  crash_config.num_workers = 4;
  bed.crawler =
      std::make_unique<Crawler>(bed.web.get(), bed.dfs.get(), crash_config);
  Status crashed = bed.crawler->Run();
  ASSERT_FALSE(crashed.ok());
  // The dying process flushes what it had buffered — the DFS is left with
  // records from beyond the last checkpoint, which resume must discard.
  bed.crawler.reset();

  // A fresh incarnation picks up from the latest checkpoint.
  bed.crawler =
      std::make_unique<Crawler>(bed.web.get(), bed.dfs.get(), config);
  ASSERT_TRUE(bed.crawler->Resume().ok());
  const CrawlReport& got = bed.crawler->report();

  EXPECT_EQ(got.checkpoint_restores, 1);
  EXPECT_EQ(got.companies_crawled, want.companies_crawled);
  EXPECT_EQ(got.users_crawled, want.users_crawled);
  EXPECT_EQ(got.bfs_rounds, want.bfs_rounds);
  EXPECT_EQ(got.crunchbase_profiles, want.crunchbase_profiles);
  EXPECT_EQ(got.crunchbase_matched_by_url, want.crunchbase_matched_by_url);
  EXPECT_EQ(got.crunchbase_misses, want.crunchbase_misses);
  EXPECT_EQ(got.facebook_profiles, want.facebook_profiles);
  EXPECT_EQ(got.twitter_profiles, want.twitter_profiles);
  EXPECT_TRUE(got.degraded_phases.empty());

  // Zero duplicate snapshot records, and full coverage: the resumed DFS
  // holds exactly the records of the uninterrupted run.
  std::set<int64_t> clean_startups = UniqueSnapshotIds(
      *clean.dfs, clean.crawler->StartupSnapshotDir());
  std::set<int64_t> resumed_startups =
      UniqueSnapshotIds(*bed.dfs, bed.crawler->StartupSnapshotDir());
  EXPECT_EQ(resumed_startups, clean_startups);
  std::set<int64_t> clean_users =
      UniqueSnapshotIds(*clean.dfs, clean.crawler->UserSnapshotDir());
  std::set<int64_t> resumed_users =
      UniqueSnapshotIds(*bed.dfs, bed.crawler->UserSnapshotDir());
  EXPECT_EQ(resumed_users, clean_users);
}

TEST(CrawlerResumeTest, CrashAfterPhaseSkipsCompletedWorkOnResume) {
  CrawlConfig config;
  config.crash_after_phase = std::string(kPhaseCrunchBase);
  TestBed bed = MakeTestBed(NoRandomErrors(), config);
  ASSERT_FALSE(bed.crawler->Run().ok());
  const int64_t cb_profiles = bed.crawler->report().crunchbase_profiles;
  ASSERT_GT(cb_profiles, 0);
  bed.crawler.reset();

  const int64_t al_requests = bed.web->angellist().stats().total.load();
  const int64_t cb_requests = bed.web->crunchbase().stats().total.load();

  CrawlConfig resume_config;
  bed.crawler = std::make_unique<Crawler>(bed.web.get(), bed.dfs.get(),
                                          resume_config);
  ASSERT_TRUE(bed.crawler->Resume().ok());
  const CrawlReport& report = bed.crawler->report();

  // Completed phases are not re-fetched: AngelList and CrunchBase saw no
  // further traffic; their counters rode along in the checkpoint.
  EXPECT_EQ(bed.web->angellist().stats().total.load(), al_requests);
  EXPECT_EQ(bed.web->crunchbase().stats().total.load(), cb_requests);
  EXPECT_EQ(report.crunchbase_profiles, cb_profiles);
  EXPECT_EQ(report.checkpoint_restores, 1);
  EXPECT_GT(report.facebook_profiles, 0);
  EXPECT_GT(report.twitter_profiles, 0);
  // Checkpoint retention held.
  EXPECT_LE(bed.dfs->List("/checkpoints/").size(),
            static_cast<size_t>(resume_config.checkpoints_to_keep));
}

}  // namespace
}  // namespace cfnet::crawler
