// Fault-injection harness tests: scripted FaultPlan scenarios, circuit
// breaker behaviour, graceful phase degradation with dead-letter replay,
// and the TokenPool / FetchAllPages edge cases they exposed.

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "crawler/crawler.h"
#include "crawler/fetch.h"
#include "dfs/jsonl.h"
#include "net/fault_plan.h"
#include "net/social_web.h"
#include "synth/world.h"

namespace cfnet::crawler {
namespace {

constexpr int64_t kSecond = 1000000;

struct TestBed {
  std::unique_ptr<synth::World> world;
  std::unique_ptr<net::SocialWeb> web;
  std::unique_ptr<dfs::MiniDfs> dfs;
  std::unique_ptr<Crawler> crawler;
};

TestBed MakeTestBed(net::SocialWebConfig web_config = {},
                    CrawlConfig config = {}, double scale = 0.002) {
  TestBed bed;
  synth::WorldConfig wc;
  wc.scale = scale;
  wc.seed = 99;
  bed.world = std::make_unique<synth::World>(synth::World::Generate(wc));
  bed.web = std::make_unique<net::SocialWeb>(bed.world.get(), web_config);
  bed.dfs = std::make_unique<dfs::MiniDfs>();
  config.num_workers = 4;
  bed.crawler =
      std::make_unique<Crawler>(bed.web.get(), bed.dfs.get(), config);
  return bed;
}

/// Error-free service overrides for every source, so crawl outcome counts
/// are exactly reproducible across runs (faults then come only from the
/// installed FaultPlan).
net::SocialWebConfig NoRandomErrors() {
  net::ServiceConfig plain;
  plain.transient_error_rate = 0;
  net::ServiceConfig with_token = plain;
  with_token.requires_token = true;
  net::SocialWebConfig wc;
  wc.angellist = plain;
  wc.crunchbase = plain;
  wc.facebook = with_token;
  wc.twitter = with_token;
  return wc;
}

// --- TokenPool regressions (empty-pool UB, modulo-on-zero) ------------------

TEST(TokenPoolTest, EmptyPoolIsSafe) {
  TokenPool empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.current(), "");  // previously indexed out of bounds
  empty.Rotate();                  // previously % 0
  EXPECT_EQ(empty.current(), "");
}

TEST(TokenPoolTest, EmptyPoolWithStartOffsetIsSafe) {
  // TokenPool({}, k) used to compute k % tokens_.size() with size() == 0.
  TokenPool empty({}, 3);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.current(), "");
}

TEST(TokenPoolTest, StartOffsetWrapsAroundPool) {
  TokenPool pool({"a", "b", "c"}, 7);
  EXPECT_EQ(pool.current(), "b");  // 7 % 3 == 1
  pool.Rotate();
  EXPECT_EQ(pool.current(), "c");
}

TEST(TokenPoolTest, FetchWithEmptyPoolAgainstTokenServiceGets401) {
  synth::WorldConfig wc;
  wc.scale = 0.002;
  wc.seed = 99;
  synth::World world = synth::World::Generate(wc);
  net::ServiceConfig config;
  config.transient_error_rate = 0;
  config.requires_token = true;
  net::FacebookService fb(&world, config);

  TokenPool empty;
  FetchCounters counters;
  int64_t t = 0;
  net::ApiResponse resp =
      FetchWithRetry(&fb, net::ApiRequest("page.get", {{"page_id", "p1"}}),
                     &empty, {}, &t, &counters);
  EXPECT_EQ(resp.status, 401);  // empty token rejected, not a crash
}

// --- circuit breaker state machine ------------------------------------------

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndCoolsDown) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.cooldown_micros = 10 * kSecond;
  CircuitBreaker breaker(config);

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  int64_t t = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.AllowRequest(t));
    breaker.RecordFailure(t);
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_FALSE(breaker.AllowRequest(t + 1));  // still cooling down

  // Cooldown elapsed: one half-open probe is admitted; success re-closes.
  t += 11 * kSecond;
  EXPECT_TRUE(breaker.AllowRequest(t));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopens) {
  CircuitBreakerConfig config;
  config.failure_threshold = 2;
  config.cooldown_micros = 5 * kSecond;
  CircuitBreaker breaker(config);

  int64_t t = 0;
  breaker.RecordFailure(t);
  breaker.RecordFailure(t);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  t += 6 * kSecond;
  EXPECT_TRUE(breaker.AllowRequest(t));  // probe admitted
  breaker.RecordFailure(t);              // probe fails
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_FALSE(breaker.AllowRequest(t + 1));

  breaker.Reset();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(t));
  EXPECT_EQ(breaker.trips(), 2);  // monotonic metric survives Reset
}

TEST(CircuitBreakerTest, SuccessClosesOnlyAfterEnoughProbes) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_micros = kSecond;
  config.half_open_probes = 2;
  CircuitBreaker breaker(config);

  breaker.RecordFailure(0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.AllowRequest(2 * kSecond));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest(2 * kSecond));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// --- scripted fault scenarios against a single service ----------------------

TEST(FaultPlanTest, ErrorBurstOpensBreakerAndFailsFast) {
  synth::WorldConfig wc;
  wc.scale = 0.002;
  wc.seed = 99;
  synth::World world = synth::World::Generate(wc);
  net::ServiceConfig config;
  config.transient_error_rate = 0;
  net::CrunchBaseService cb(&world, config);

  net::FaultPlan plan;
  plan.error_bursts = {{0, 3600 * kSecond, 1.0}};  // hard hour-long outage
  cb.set_fault_plan(plan);

  CircuitBreakerConfig bc;
  bc.failure_threshold = 3;
  CircuitBreaker breaker(bc);
  FetchCounters counters;
  int64_t t = 0;
  FetchPolicy policy;
  policy.max_retries = 2;
  policy.wait_for_breaker_probe = false;  // impatient: never probe, fail fast

  // Burn through the breaker: each fetch's attempts all hit the burst.
  net::ApiRequest req("organizations.get", {{"permalink", "org"}});
  net::ApiResponse first = FetchWithRetry(&cb, req, nullptr, policy, &t,
                                          &counters, &breaker);
  EXPECT_EQ(first.status, 503);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_GT(cb.stats().injected_errors.load(), 0);

  // While open, requests fail fast without touching the service.
  int64_t before = cb.stats().total.load();
  net::ApiResponse fast = FetchWithRetry(&cb, req, nullptr, policy, &t,
                                         &counters, &breaker);
  EXPECT_EQ(fast.status, 503);
  EXPECT_EQ(cb.stats().total.load(), before);
  EXPECT_GT(counters.breaker_fast_fails, 0);
}

TEST(FaultPlanTest, MalformedBodiesAreRetriedThen502) {
  synth::WorldConfig wc;
  wc.scale = 0.002;
  wc.seed = 99;
  synth::World world = synth::World::Generate(wc);
  net::ServiceConfig config;
  config.transient_error_rate = 0;
  net::AngelListService al(&world, config);

  net::FaultPlan plan;
  plan.malformed_bodies = {{0, 3600 * kSecond, 1.0}};
  al.set_fault_plan(plan);

  FetchCounters counters;
  int64_t t = 0;
  net::ApiResponse resp =
      FetchWithRetry(&al, net::ApiRequest("startups.get", {{"id", "1"}}),
                     nullptr, {}, &t, &counters);
  // Truncated 200s are treated as transport errors; exhausting retries
  // surfaces a 502, never a silently-broken body.
  EXPECT_EQ(resp.status, 502);
  EXPECT_GT(counters.malformed_retries, 0);
  EXPECT_GT(al.stats().malformed_responses.load(), 0);

  // Once the window closes, the same request parses fine.
  t = 3601 * kSecond;
  net::ApiResponse after =
      FetchWithRetry(&al, net::ApiRequest("startups.get", {{"id", "1"}}),
                     nullptr, {}, &t, &counters);
  EXPECT_TRUE(after.ok());
}

TEST(FaultPlanTest, AuthStormRevokesTokenAuthenticatedRequests) {
  synth::WorldConfig wc;
  wc.scale = 0.002;
  wc.seed = 99;
  synth::World world = synth::World::Generate(wc);
  net::ServiceConfig config;
  config.transient_error_rate = 0;
  config.requires_token = true;
  net::FacebookService fb(&world, config);

  // Mint a valid token before the storm begins.
  int64_t t = 0;
  net::ApiResponse tok =
      fb.Handle(net::ApiRequest("oauth.token", {{"user", "crawler"}}), &t);
  ASSERT_TRUE(tok.ok());
  std::string token = tok.body.Get("access_token").AsString();

  net::FaultPlan plan;
  plan.auth_storms = {{10 * kSecond, 3600 * kSecond, 1.0}};
  fb.set_fault_plan(plan);

  t = 20 * kSecond;  // inside the storm
  net::ApiRequest req("page.get", {{"page_id", "p1"}});
  req.access_token = token;
  net::ApiResponse resp = fb.Handle(req, &t);
  EXPECT_EQ(resp.status, 401);
  EXPECT_GT(fb.stats().injected_auth_failures.load(), 0);

  t = 3601 * kSecond;  // storm over, same token works again
  net::ApiRequest again("page.get", {{"page_id", "p1"}});
  again.access_token = token;
  EXPECT_NE(fb.Handle(again, &t).status, 401);
}

TEST(FaultPlanTest, LatencySpikeMultipliesRequestTime) {
  synth::WorldConfig wc;
  wc.scale = 0.002;
  wc.seed = 99;
  synth::World world = synth::World::Generate(wc);
  net::ServiceConfig config;
  config.transient_error_rate = 0;
  config.latency_jitter = 0;  // deterministic latency for exact comparison
  net::AngelListService plain(&world, config);
  net::AngelListService spiked(&world, config);

  net::FaultPlan plan;
  plan.latency_spikes = {{0, 3600 * kSecond, 8.0}};
  spiked.set_fault_plan(plan);

  int64_t t_plain = 0;
  int64_t t_spiked = 0;
  net::ApiRequest req("startups.get", {{"id", "1"}});
  ASSERT_TRUE(plain.Handle(req, &t_plain).ok());
  ASSERT_TRUE(spiked.Handle(req, &t_spiked).ok());
  EXPECT_EQ(t_spiked, 8 * t_plain);
}

TEST(FaultPlanTest, FractionalRatesAreSeededAndReproducible) {
  net::FaultPlan plan;
  plan.error_bursts = {{0, 1000 * kSecond, 0.5}};
  net::FaultInjector a(plan);
  net::FaultInjector b(plan);
  int hits = 0;
  for (int i = 0; i < 200; ++i) {
    net::FaultDecision da = a.Evaluate(i * 1000);
    net::FaultDecision db = b.Evaluate(i * 1000);
    EXPECT_EQ(da.inject_error, db.inject_error);  // same seed, same stream
    hits += da.inject_error ? 1 : 0;
  }
  EXPECT_GT(hits, 50);   // roughly half...
  EXPECT_LT(hits, 150);  // ...but never all or none
}

// --- FetchAllPages error paths ----------------------------------------------

/// Endpoint script for pagination edge cases: responses keyed by page.
class ScriptedService : public net::ApiService {
 public:
  explicit ScriptedService(std::vector<net::ApiResponse> pages)
      : net::ApiService("scripted", nullptr, PlainConfig()),
        pages_(std::move(pages)) {}

 protected:
  net::ApiResponse Dispatch(const net::ApiRequest& request,
                            int64_t /*now_micros*/) override {
    int64_t page = request.GetIntParam("page", 1);
    if (page < 1 || page > static_cast<int64_t>(pages_.size())) {
      return net::ApiResponse::Error(404, "page out of range");
    }
    return pages_[static_cast<size_t>(page - 1)];
  }

 private:
  static net::ServiceConfig PlainConfig() {
    net::ServiceConfig config;
    config.transient_error_rate = 0;
    config.latency_mean_micros = 1000;
    return config;
  }
  std::vector<net::ApiResponse> pages_;
};

json::Json PageBody(int64_t page, int64_t last_page) {
  json::Json body = json::Json::MakeObject();
  body.Set("page", page);
  body.Set("last_page", last_page);
  return body;
}

TEST(FetchAllPagesTest, NonRetryableErrorMidPaginationStopsAndSurfaces) {
  ScriptedService svc({net::ApiResponse::Ok(PageBody(1, 3)),
                       net::ApiResponse::Error(404, "page vanished"),
                       net::ApiResponse::Ok(PageBody(3, 3))});
  FetchCounters counters;
  int64_t t = 0;
  std::vector<int64_t> seen;
  net::ApiResponse resp = FetchAllPages(
      &svc,
      [](int64_t page) {
        return net::ApiRequest("list", {{"page", std::to_string(page)}});
      },
      nullptr, {}, &t, &counters,
      [&](const json::Json& body) { seen.push_back(body.Get("page").AsInt()); });
  EXPECT_EQ(resp.status, 404);  // error is surfaced, not swallowed
  EXPECT_EQ(seen, std::vector<int64_t>({1}));  // page 3 never fetched
  EXPECT_EQ(counters.retries, 0);  // 404 is not retryable
}

TEST(FetchAllPagesTest, ShrinkingLastPageStopsEarly) {
  // The listing shrinks while we paginate (entities disappear mid-crawl):
  // page 1 claims 3 pages, page 2 says there are only 2 left.
  ScriptedService svc({net::ApiResponse::Ok(PageBody(1, 3)),
                       net::ApiResponse::Ok(PageBody(2, 2)),
                       net::ApiResponse::Ok(PageBody(3, 3))});
  FetchCounters counters;
  int64_t t = 0;
  std::vector<int64_t> seen;
  net::ApiResponse resp = FetchAllPages(
      &svc,
      [](int64_t page) {
        return net::ApiRequest("list", {{"page", std::to_string(page)}});
      },
      nullptr, {}, &t, &counters,
      [&](const json::Json& body) { seen.push_back(body.Get("page").AsInt()); });
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(seen, std::vector<int64_t>({1, 2}));  // page 3 not requested
}

// --- graceful degradation + dead-letter replay (acceptance) -----------------

TEST(FaultInjectionCrawlTest, BreakerTripsDegradePhaseAndReplayRecovers) {
  // Baseline: identical world/services, no faults.
  CrawlConfig clean_config;
  TestBed clean = MakeTestBed(NoRandomErrors(), clean_config);
  ASSERT_TRUE(clean.crawler->Run().ok());
  const CrawlReport& clean_report = clean.crawler->report();
  ASSERT_GT(clean_report.crunchbase_profiles, 0);

  // Faulted run: CrunchBase is hard-down for the whole crawl.
  TestBed bed = MakeTestBed(NoRandomErrors(), clean_config);
  net::FaultPlan outage;
  outage.error_bursts = {{0, 365ll * 24 * 3600 * kSecond, 1.0}};
  bed.web->crunchbase().set_fault_plan(outage);

  ASSERT_TRUE(bed.crawler->Run().ok());  // crawl survives the dead source
  const CrawlReport& report = bed.crawler->report();

  // The breaker opened past its budget and the phase degraded.
  EXPECT_GT(bed.crawler->crunchbase_breaker().trips(),
            clean_config.breaker_trip_budget);
  EXPECT_GT(report.breaker_trips, 0);
  ASSERT_EQ(report.degraded_phases.size(), 1u);
  EXPECT_EQ(report.degraded_phases[0].phase, kPhaseCrunchBase);
  EXPECT_GT(report.degraded_phases[0].dead_lettered, 0);
  EXPECT_EQ(report.crunchbase_profiles, 0);
  EXPECT_GT(report.dead_lettered_ids, 0);
  EXPECT_GT(report.fetch.breaker_waits, 0);  // cooldowns were waited out

  // The unaffected phases are intact.
  EXPECT_EQ(report.companies_crawled, clean_report.companies_crawled);
  EXPECT_EQ(report.facebook_profiles, clean_report.facebook_profiles);
  EXPECT_EQ(report.twitter_profiles, clean_report.twitter_profiles);

  // Every skipped entity is in the dead-letter log, replayable.
  EXPECT_FALSE(bed.dfs->List(bed.crawler->DeadLetterDir(kPhaseCrunchBase)).empty());

  // Faults clear; replaying the dead letters restores full coverage.
  bed.web->crunchbase().set_fault_plan({});
  ASSERT_TRUE(bed.crawler->ReplayDeadLetters().ok());
  const CrawlReport& replayed = bed.crawler->report();
  EXPECT_EQ(replayed.crunchbase_profiles, clean_report.crunchbase_profiles);
  EXPECT_EQ(replayed.crunchbase_misses, clean_report.crunchbase_misses);
  EXPECT_GT(replayed.dead_letters_replayed, 0);
  EXPECT_TRUE(bed.dfs->List(bed.crawler->DeadLetterDir(kPhaseCrunchBase)).empty());
}

TEST(FaultInjectionCrawlTest, CrawlStartingInsideOutageWindowCompletes) {
  // AngelList is in a maintenance window when the crawl starts (worker
  // clocks begin at 0, inside [0, 20s)); patient backoff rides it out and
  // the BFS proceeds once the window closes.
  net::SocialWebConfig wc = NoRandomErrors();
  wc.angellist->outage_windows = {{0, 20 * kSecond}};
  CrawlConfig config;
  config.fetch.max_retries = 12;  // patient: ~0.5s * (2^12 - 1) of budget
  TestBed bed = MakeTestBed(wc, config);

  ASSERT_TRUE(bed.crawler->Run().ok());
  const CrawlReport& report = bed.crawler->report();
  EXPECT_GT(report.companies_crawled, 0);
  EXPECT_GT(report.users_crawled, 0);
  EXPECT_GT(report.fetch.retries, 0);
  EXPECT_GT(bed.web->angellist().stats().outage_rejections.load(), 0);
  EXPECT_GT(report.makespan_micros, 20 * kSecond);
}

}  // namespace
}  // namespace cfnet::crawler
