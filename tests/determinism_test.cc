// Determinism guarantees: the whole pipeline is reproducible bit-for-bit
// for a fixed seed, regardless of worker/thread counts where the design
// promises it.

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "community/coda.h"
#include "dataflow/dataset.h"
#include "community/louvain.h"
#include "community/sbm.h"
#include "core/engagement_analysis.h"
#include "core/investor_graph.h"
#include "core/platform.h"
#include "util/rng.h"

namespace cfnet {
namespace {

core::ExploratoryPlatform::Options SmallOptions(int workers) {
  core::ExploratoryPlatform::Options options;
  options.world.scale = 0.002;
  options.world.seed = 2024;
  options.crawl.num_workers = workers;
  return options;
}

TEST(DeterminismTest, TwoIdenticalPlatformsAgreeExactly) {
  core::ExploratoryPlatform a(SmallOptions(4));
  core::ExploratoryPlatform b(SmallOptions(4));
  ASSERT_TRUE(a.CollectData().ok());
  ASSERT_TRUE(b.CollectData().ok());

  EXPECT_EQ(a.crawl_report().companies_crawled,
            b.crawl_report().companies_crawled);
  EXPECT_EQ(a.crawl_report().users_crawled, b.crawl_report().users_crawled);
  EXPECT_EQ(a.crawl_report().crunchbase_profiles,
            b.crawl_report().crunchbase_profiles);

  auto inputs_a = a.LoadInputs();
  auto inputs_b = b.LoadInputs();
  ASSERT_TRUE(inputs_a.ok());
  ASSERT_TRUE(inputs_b.ok());

  core::EngagementTable ta = core::AnalyzeEngagement(a.context(), *inputs_a);
  core::EngagementTable tb = core::AnalyzeEngagement(b.context(), *inputs_b);
  ASSERT_EQ(ta.rows.size(), tb.rows.size());
  for (size_t i = 0; i < ta.rows.size(); ++i) {
    EXPECT_EQ(ta.rows[i].num_companies, tb.rows[i].num_companies);
    EXPECT_DOUBLE_EQ(ta.rows[i].success_pct, tb.rows[i].success_pct);
  }
  EXPECT_DOUBLE_EQ(ta.fb_likes_median, tb.fb_likes_median);
}

TEST(DeterminismTest, WorkerCountDoesNotChangeCrawlCoverage) {
  core::ExploratoryPlatform a(SmallOptions(1));
  core::ExploratoryPlatform b(SmallOptions(8));
  ASSERT_TRUE(a.CollectData().ok());
  ASSERT_TRUE(b.CollectData().ok());
  // Coverage counts are worker-count independent (fetch *order* differs but
  // the BFS closure and augmentation results are the same sets).
  EXPECT_EQ(a.crawl_report().companies_crawled,
            b.crawl_report().companies_crawled);
  EXPECT_EQ(a.crawl_report().users_crawled, b.crawl_report().users_crawled);
  EXPECT_EQ(a.crawl_report().crunchbase_profiles,
            b.crawl_report().crunchbase_profiles);
  EXPECT_EQ(a.crawl_report().facebook_profiles,
            b.crawl_report().facebook_profiles);
  EXPECT_EQ(a.crawl_report().twitter_profiles,
            b.crawl_report().twitter_profiles);

  // And the merged investor graph is identical.
  auto inputs_a = a.LoadInputs();
  auto inputs_b = b.LoadInputs();
  ASSERT_TRUE(inputs_a.ok());
  ASSERT_TRUE(inputs_b.ok());
  graph::BipartiteGraph ga = core::BuildInvestorGraph(a.context(), *inputs_a);
  graph::BipartiteGraph gb = core::BuildInvestorGraph(b.context(), *inputs_b);
  EXPECT_EQ(ga.num_left(), gb.num_left());
  EXPECT_EQ(ga.num_edges(), gb.num_edges());
}

graph::BipartiteGraph SmallPlanted(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < 12; ++i) {
      for (int c = 0; c < 9; ++c) {
        if (rng.Bernoulli(0.6)) {
          edges.emplace_back(static_cast<uint64_t>(b * 12 + i + 1),
                             500 + static_cast<uint64_t>(b * 9 + c));
        }
      }
    }
  }
  return graph::BipartiteGraph::FromEdges(edges);
}

TEST(DeterminismTest, CodaIndependentOfThreadCount) {
  // F rows update against a snapshot of H (and vice versa), so the fit is
  // exactly reproducible regardless of the worker-pool width.
  graph::BipartiteGraph g = SmallPlanted(6);
  community::CodaConfig one;
  one.num_communities = 6;
  one.max_iterations = 12;
  one.num_threads = 1;
  community::CodaConfig four = one;
  four.num_threads = 4;
  community::CodaResult ra = community::Coda(one).Fit(g);
  community::CodaResult rb = community::Coda(four).Fit(g);
  EXPECT_EQ(ra.final_log_likelihood, rb.final_log_likelihood);
  ASSERT_EQ(ra.log_likelihood_trace.size(), rb.log_likelihood_trace.size());
  for (size_t i = 0; i < ra.log_likelihood_trace.size(); ++i) {
    EXPECT_EQ(ra.log_likelihood_trace[i], rb.log_likelihood_trace[i]);
  }
  EXPECT_EQ(ra.f, rb.f);
  EXPECT_EQ(ra.h, rb.h);
}

TEST(DeterminismTest, DetectorsDeterministicPerSeed) {
  graph::BipartiteGraph g = SmallPlanted(7);
  graph::WeightedGraph projection = graph::WeightedGraph::ProjectLeft(g);

  community::LouvainResult la = community::RunLouvain(projection);
  community::LouvainResult lb = community::RunLouvain(projection);
  EXPECT_EQ(la.labels, lb.labels);
  EXPECT_DOUBLE_EQ(la.modularity, lb.modularity);

  community::SbmResult sa = community::RunSbm(g);
  community::SbmResult sb = community::RunSbm(g);
  EXPECT_EQ(sa.investor_labels, sb.investor_labels);
  EXPECT_DOUBLE_EQ(sa.log_posterior, sb.log_posterior);
}

TEST(DeterminismTest, SampleIndependentOfPartitionCountAndThreads) {
  // Dataset::Sample decides per element by hashing (seed, stable stream
  // index), so the sampled set must be identical across partitionings,
  // thread counts and morsel sizes.
  std::vector<int64_t> data(50000);
  std::iota(data.begin(), data.end(), 0);

  auto sample_with = [&data](size_t threads, size_t partitions,
                             size_t morsel) {
    auto ctx = std::make_shared<dataflow::ExecutionContext>(threads);
    ctx->set_morsel_size(morsel);
    return dataflow::Dataset<int64_t>::FromVector(ctx, data, partitions)
        .Sample(0.1, 77)
        .Collect();
  };

  std::vector<int64_t> reference = sample_with(1, 1, 1024);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(sample_with(4, 3, 512), reference);
  EXPECT_EQ(sample_with(2, 16, 4096), reference);
  EXPECT_EQ(sample_with(4, 7, 100), reference);

  // The guarantee holds inside fused chains too: a 1:1 op upstream of the
  // Sample preserves stream indices.
  auto ctx = std::make_shared<dataflow::ExecutionContext>(3);
  auto chained = dataflow::Dataset<int64_t>::FromVector(ctx, data, 5)
                     .Map([](const int64_t& x) { return x; })
                     .Sample(0.1, 77)
                     .Collect();
  EXPECT_EQ(chained, reference);
}

}  // namespace
}  // namespace cfnet
