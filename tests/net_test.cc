#include <set>

#include <gtest/gtest.h>

#include "net/social_web.h"
#include "net/urls.h"
#include "synth/world.h"

namespace cfnet::net {
namespace {

const synth::World& TestWorld() {
  static synth::World* world = []() {
    synth::WorldConfig config;
    config.scale = 0.004;  // ~3000 companies
    config.seed = 7;
    return new synth::World(synth::World::Generate(config));
  }();
  return *world;
}


/// Deterministic tests need exact request counts, so transient-error
/// injection is disabled unless a test exercises it explicitly.
ServiceConfig NoErrors(ServiceConfig config = {}) {
  config.transient_error_rate = 0;
  return config;
}

// --- rate limiter ------------------------------------------------------------

TEST(RateLimiterTest, AdmitsUpToWindowCapacity) {
  SlidingWindowRateLimiter limiter(3, 1000);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(limiter.Admit("tok", 100 + i).admitted);
  }
  auto d = limiter.Admit("tok", 103);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.retry_at_micros, 100 + 1000);
  EXPECT_EQ(limiter.AdmittedCount("tok"), 3);
}

TEST(RateLimiterTest, WindowSlides) {
  SlidingWindowRateLimiter limiter(2, 1000);
  EXPECT_TRUE(limiter.Admit("t", 0).admitted);
  EXPECT_TRUE(limiter.Admit("t", 500).admitted);
  EXPECT_FALSE(limiter.Admit("t", 900).admitted);
  EXPECT_TRUE(limiter.Admit("t", 1001).admitted);  // first call expired
  EXPECT_FALSE(limiter.Admit("t", 1400).admitted); // 500 + 1001 still active
  EXPECT_TRUE(limiter.Admit("t", 1501).admitted);
}

TEST(RateLimiterTest, TokensAreIndependent) {
  SlidingWindowRateLimiter limiter(1, 1000);
  EXPECT_TRUE(limiter.Admit("a", 0).admitted);
  EXPECT_TRUE(limiter.Admit("b", 0).admitted);
  EXPECT_FALSE(limiter.Admit("a", 1).admitted);
}

TEST(RateLimiterTest, OutOfOrderTimestamps) {
  SlidingWindowRateLimiter limiter(2, 1000);
  EXPECT_TRUE(limiter.Admit("t", 500).admitted);
  EXPECT_TRUE(limiter.Admit("t", 100).admitted);  // earlier worker clock
  auto d = limiter.Admit("t", 600);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.retry_at_micros, 1100);  // oldest (100) + window
}

// --- token registry ------------------------------------------------------------

TEST(TokenRegistryTest, AppCapEnforced) {
  TokenRegistry registry(5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(registry.RegisterApp("alice").ok());
  }
  auto sixth = registry.RegisterApp("alice");
  EXPECT_FALSE(sixth.ok());
  EXPECT_TRUE(sixth.status().IsResourceExhausted());
  EXPECT_TRUE(registry.RegisterApp("bob").ok());  // other owners unaffected
}

TEST(TokenRegistryTest, ShortLivedTokenExpires) {
  TokenRegistry registry;
  std::string tok = registry.IssueShortLivedToken("u", 1000, 500);
  EXPECT_TRUE(registry.IsValid(tok, 1400));
  EXPECT_FALSE(registry.IsValid(tok, 1500));
  EXPECT_FALSE(registry.IsValid("garbage", 0));
}

TEST(TokenRegistryTest, ExchangeYieldsLongLived) {
  TokenRegistry registry;
  std::string short_tok = registry.IssueShortLivedToken("u", 0, 100);
  auto long_tok = registry.ExchangeForLongLived(short_tok, 50);
  ASSERT_TRUE(long_tok.ok());
  EXPECT_TRUE(registry.IsValid(*long_tok, 1e15));
  // Expired short token cannot be exchanged.
  auto late = registry.ExchangeForLongLived(short_tok, 200);
  EXPECT_FALSE(late.ok());
}

// --- AngelList ---------------------------------------------------------------

TEST(AngelListServiceTest, RaisingListingPaginates) {
  AngelListService al(&TestWorld(), NoErrors({.latency_mean_micros = 80000}));
  int64_t t = 0;
  std::set<int64_t> ids;
  int64_t page = 1;
  int64_t last_page = 1;
  do {
    ApiResponse resp = al.Handle(
        ApiRequest("startups.raising", {{"page", std::to_string(page)}}), &t);
    ASSERT_TRUE(resp.ok());
    last_page = resp.body.Get("last_page").AsInt();
    for (const auto& s : resp.body.Get("startups").array()) {
      ids.insert(s.Get("id").AsInt());
    }
    ++page;
  } while (page <= last_page);
  // Every currently-raising company appears exactly once.
  size_t expected = 0;
  for (const auto& c : TestWorld().companies()) {
    if (c.currently_raising) ++expected;
  }
  EXPECT_EQ(ids.size(), expected);
  EXPECT_GT(t, 0);  // latency accrued onto the worker clock
}

TEST(AngelListServiceTest, StartupProfileFields) {
  AngelListService al(&TestWorld(), NoErrors({.latency_mean_micros = 80000}));
  // Find a company with both social accounts and a CrunchBase link.
  const synth::CompanyTruth* target = nullptr;
  for (const auto& c : TestWorld().companies()) {
    if (c.social == synth::SocialCell::kBoth && c.crunchbase_url_listed) {
      target = &c;
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  int64_t t = 0;
  ApiResponse resp = al.Handle(
      ApiRequest("startups.get", {{"id", std::to_string(target->id)}}), &t);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.body.Get("name").AsString(), target->name);
  EXPECT_EQ(resp.body.Get("twitter_url").AsString(), TwitterUrl(target->id));
  EXPECT_EQ(resp.body.Get("facebook_url").AsString(), FacebookUrl(target->id));
  EXPECT_EQ(resp.body.Get("crunchbase_url").AsString(),
            CrunchBaseUrl(target->id));
  EXPECT_GE(resp.body.Get("founder_ids").size(), 1u);
}

TEST(AngelListServiceTest, ProfileOmitsAbsentLinks) {
  AngelListService al(&TestWorld(), NoErrors({.latency_mean_micros = 80000}));
  const synth::CompanyTruth* target = nullptr;
  for (const auto& c : TestWorld().companies()) {
    if (c.social == synth::SocialCell::kNone) {
      target = &c;
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  int64_t t = 0;
  ApiResponse resp = al.Handle(
      ApiRequest("startups.get", {{"id", std::to_string(target->id)}}), &t);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.body.Has("twitter_url"));
  EXPECT_FALSE(resp.body.Has("facebook_url"));
}

TEST(AngelListServiceTest, UserProfileExposesOnlyVisibleInvestments) {
  AngelListService al(&TestWorld(), NoErrors({.latency_mean_micros = 80000}));
  const synth::UserTruth* investor = nullptr;
  for (const auto& u : TestWorld().users()) {
    bool has_hidden = false;
    for (uint8_t v : u.investment_on_angellist) has_hidden |= v == 0;
    if (has_hidden) {
      investor = &u;
      break;
    }
  }
  ASSERT_NE(investor, nullptr) << "expected at least one partially-hidden "
                                  "portfolio in the test world";
  int64_t t = 0;
  ApiResponse resp = al.Handle(
      ApiRequest("users.get", {{"id", std::to_string(investor->id)}}), &t);
  ASSERT_TRUE(resp.ok());
  size_t visible = 0;
  for (uint8_t v : investor->investment_on_angellist) visible += v;
  EXPECT_EQ(resp.body.Get("investment_company_ids").size(), visible);
  EXPECT_LT(visible, investor->investments.size());
}

TEST(AngelListServiceTest, FollowersPaginationCoversAll) {
  AngelListService al(&TestWorld(), NoErrors({.latency_mean_micros = 80000}));
  // Pick the most-followed company to force multiple pages.
  synth::CompanyId best = 1;
  size_t best_count = 0;
  for (const auto& c : TestWorld().companies()) {
    size_t n = TestWorld().FollowersOf(c.id).size();
    if (n > best_count) {
      best_count = n;
      best = c.id;
    }
  }
  ASSERT_GT(best_count, 50u);  // page size default
  int64_t t = 0;
  std::set<int64_t> seen;
  int64_t page = 1;
  int64_t last = 1;
  do {
    ApiResponse resp =
        al.Handle(ApiRequest("startups.followers",
                             {{"id", std::to_string(best)},
                              {"page", std::to_string(page)}}),
                  &t);
    ASSERT_TRUE(resp.ok());
    last = resp.body.Get("last_page").AsInt();
    for (const auto& f : resp.body.Get("follower_ids").array()) {
      seen.insert(f.AsInt());
    }
    ++page;
  } while (page <= last);
  EXPECT_EQ(seen.size(), best_count);
}

TEST(AngelListServiceTest, NotFoundAndBadEndpoint) {
  AngelListService al(&TestWorld(), NoErrors({.latency_mean_micros = 80000}));
  int64_t t = 0;
  EXPECT_EQ(al.Handle(ApiRequest("startups.get", {{"id", "999999999"}}), &t)
                .status,
            404);
  EXPECT_EQ(al.Handle(ApiRequest("nope"), &t).status, 400);
  EXPECT_EQ(al.Handle(ApiRequest("startups.raising", {{"page", "99999"}}), &t)
                .status,
            404);
}

// --- CrunchBase ----------------------------------------------------------------

TEST(CrunchBaseServiceTest, FundedOrganizationFetchable) {
  CrunchBaseService cb(&TestWorld(), NoErrors({.latency_mean_micros = 120000}));
  const synth::CompanyTruth* funded = nullptr;
  for (const auto& c : TestWorld().companies()) {
    if (c.raised_funding) {
      funded = &c;
      break;
    }
  }
  ASSERT_NE(funded, nullptr);
  int64_t t = 0;
  ApiResponse resp = cb.Handle(
      ApiRequest("organizations.get",
                 {{"permalink", CrunchBasePermalink(funded->id)}}),
      &t);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.body.Get("angellist_url").AsString(),
            AngelListCompanyUrl(funded->id));
  EXPECT_GT(resp.body.Get("total_funding_usd").AsDouble(), 0.0);
  EXPECT_GE(resp.body.Get("funding_rounds").size(), 1u);
}

TEST(CrunchBaseServiceTest, UnfundedOrganizationIs404) {
  CrunchBaseService cb(&TestWorld(), NoErrors({.latency_mean_micros = 120000}));
  const synth::CompanyTruth* unfunded = nullptr;
  for (const auto& c : TestWorld().companies()) {
    if (!c.raised_funding) {
      unfunded = &c;
      break;
    }
  }
  ASSERT_NE(unfunded, nullptr);
  int64_t t = 0;
  ApiResponse resp = cb.Handle(
      ApiRequest("organizations.get",
                 {{"permalink", CrunchBasePermalink(unfunded->id)}}),
      &t);
  EXPECT_EQ(resp.status, 404);
}

TEST(CrunchBaseServiceTest, SearchByExactName) {
  CrunchBaseService cb(&TestWorld(), NoErrors({.latency_mean_micros = 120000}));
  const synth::CompanyTruth* funded = nullptr;
  for (const auto& c : TestWorld().companies()) {
    if (c.raised_funding) {
      funded = &c;
      break;
    }
  }
  ASSERT_NE(funded, nullptr);
  int64_t t = 0;
  ApiResponse resp = cb.Handle(
      ApiRequest("organizations.search", {{"name", funded->name}}), &t);
  ASSERT_TRUE(resp.ok());
  ASSERT_GE(resp.body.Get("results").size(), 1u);
  EXPECT_EQ(resp.body.Get("results").at(0).Get("name").AsString(),
            funded->name);
  // Unknown names return empty result sets.
  ApiResponse none = cb.Handle(
      ApiRequest("organizations.search", {{"name", "No Such Startup 0"}}), &t);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.body.Get("results").size(), 0u);
}

// --- Facebook --------------------------------------------------------------------

TEST(FacebookServiceTest, OAuthFlowAndPageFetch) {
  FacebookService fb(&TestWorld(), NoErrors({.latency_mean_micros = 90000, .requires_token = true}));
  int64_t t = 0;
  // Unauthenticated page fetch fails.
  const synth::CompanyTruth* with_fb = nullptr;
  for (const auto& c : TestWorld().companies()) {
    if (c.has_facebook()) {
      with_fb = &c;
      break;
    }
  }
  ASSERT_NE(with_fb, nullptr);
  ApiRequest page_req("page.get", {{"page_id", FacebookPageId(with_fb->id)}});
  EXPECT_EQ(fb.Handle(page_req, &t).status, 401);

  // Short-lived token works until it expires; long-lived forever.
  ApiResponse short_resp =
      fb.Handle(ApiRequest("oauth.token", {{"user", "crawler"}}), &t);
  ASSERT_TRUE(short_resp.ok());
  std::string short_tok = short_resp.body.Get("access_token").AsString();
  page_req.access_token = short_tok;
  EXPECT_TRUE(fb.Handle(page_req, &t).ok());

  ApiResponse long_resp =
      fb.Handle(ApiRequest("oauth.exchange", {{"token", short_tok}}), &t);
  ASSERT_TRUE(long_resp.ok());
  EXPECT_TRUE(long_resp.body.Get("long_lived").AsBool());
  std::string long_tok = long_resp.body.Get("access_token").AsString();

  // Advance past short-token expiry: short fails, long still works.
  t += FacebookService::kShortTokenTtlMicros + 1;
  page_req.access_token = short_tok;
  EXPECT_EQ(fb.Handle(page_req, &t).status, 401);
  page_req.access_token = long_tok;
  ApiResponse page = fb.Handle(page_req, &t);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page.body.Get("fan_count").AsInt(), with_fb->facebook_likes);
  EXPECT_FALSE(page.body.Get("location").AsString().empty());
}

// --- Twitter ---------------------------------------------------------------------

TEST(TwitterServiceTest, RateLimitAndTokenSharding) {
  TwitterService tw(&TestWorld(),
                    NoErrors({.latency_mean_micros = 70000,
                              .requires_token = true,
                              .rate_limit_calls = 180,
                              .rate_limit_window_micros = 15ll * 60 * 1000000}));
  int64_t t = 0;
  ApiResponse reg =
      tw.Handle(ApiRequest("apps.register", {{"owner", "m0"}}), &t);
  ASSERT_TRUE(reg.ok());
  std::string tok = reg.body.Get("access_token").AsString();

  const synth::CompanyTruth* with_tw = nullptr;
  for (const auto& c : TestWorld().companies()) {
    if (c.has_twitter()) {
      with_tw = &c;
      break;
    }
  }
  ASSERT_NE(with_tw, nullptr);
  ApiRequest req("users.show",
                 {{"screen_name", TwitterScreenName(with_tw->id)}}, tok);

  // 180 calls pass; the 181st within the window is rejected with retry info.
  int64_t t0 = t;
  int ok_count = 0;
  ApiResponse last;
  for (int i = 0; i < 181; ++i) {
    // Keep all calls inside one 15-minute window.
    t = t0 + i;  // microseconds apart
    last = tw.Handle(req, &t);
    if (last.ok()) ++ok_count;
  }
  EXPECT_EQ(ok_count, 180);
  EXPECT_EQ(last.status, 429);
  EXPECT_GT(last.body.Get("retry_at_micros").AsInt(), t0);

  // A second token is unaffected.
  ApiResponse reg2 =
      tw.Handle(ApiRequest("apps.register", {{"owner", "m1"}}), &t);
  ASSERT_TRUE(reg2.ok());
  req.access_token = reg2.body.Get("access_token").AsString();
  EXPECT_TRUE(tw.Handle(req, &t).ok());

  // After the window passes, the first token admits again.
  t = t0 + 15ll * 60 * 1000000 + 1000;
  req.access_token = tok;
  EXPECT_TRUE(tw.Handle(req, &t).ok());
}

TEST(TwitterServiceTest, ProfileFieldsAndNullFollowers) {
  synth::WorldConfig config;
  config.scale = 0.004;
  config.seed = 11;
  config.tw_followers_null_rate = 0.5;  // make nulls common for the test
  synth::World world = synth::World::Generate(config);
  TwitterService tw(&world,
                    NoErrors({.latency_mean_micros = 70000,
                              .requires_token = true,
                              .rate_limit_calls = 180,
                              .rate_limit_window_micros = 15ll * 60 * 1000000}));
  int64_t t = 0;
  ApiResponse reg =
      tw.Handle(ApiRequest("apps.register", {{"owner", "m"}}), &t);
  std::string tok = reg.body.Get("access_token").AsString();

  bool saw_null = false;
  bool saw_value = false;
  for (const auto& c : world.companies()) {
    if (!c.has_twitter()) continue;
    ApiResponse resp = tw.Handle(
        ApiRequest("users.show", {{"screen_name", TwitterScreenName(c.id)}},
                   tok),
        &t);
    if (resp.status == 429) {
      t = resp.body.Get("retry_at_micros").AsInt();
      continue;
    }
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.body.Get("statuses_count").AsInt(), c.twitter_tweets);
    if (resp.body.Get("followers_count").is_null()) {
      saw_null = true;
    } else {
      saw_value = true;
    }
    if (saw_null && saw_value) break;
  }
  EXPECT_TRUE(saw_null);
  EXPECT_TRUE(saw_value);
}

TEST(TwitterServiceTest, AppCapReturns403) {
  TwitterService tw(&TestWorld(),
                    NoErrors({.latency_mean_micros = 70000,
                              .requires_token = true,
                              .rate_limit_calls = 180,
                              .rate_limit_window_micros = 15ll * 60 * 1000000}));
  int64_t t = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        tw.Handle(ApiRequest("apps.register", {{"owner", "solo"}}), &t).ok());
  }
  EXPECT_EQ(tw.Handle(ApiRequest("apps.register", {{"owner", "solo"}}), &t)
                .status,
            403);
}

// --- cross-cutting service behaviour ------------------------------------------

TEST(ApiServiceTest, TransientErrorsInjected) {
  ServiceConfig config;
  config.transient_error_rate = 0.5;
  AngelListService al(&TestWorld(), config);
  int64_t t = 0;
  int errors = 0;
  for (int i = 0; i < 200; ++i) {
    ApiResponse resp =
        al.Handle(ApiRequest("startups.get", {{"id", "1"}}), &t);
    if (resp.status == 503) ++errors;
  }
  EXPECT_GT(errors, 50);
  EXPECT_LT(errors, 150);
  EXPECT_EQ(al.stats().transient_errors.load(), errors);
}

TEST(ApiServiceTest, StatsCounters) {
  AngelListService al(&TestWorld(), NoErrors({.latency_mean_micros = 80000}));
  int64_t t = 0;
  al.Handle(ApiRequest("startups.get", {{"id", "1"}}), &t);
  al.Handle(ApiRequest("startups.get", {{"id", "999999999"}}), &t);
  EXPECT_EQ(al.stats().total.load(), 2);
  EXPECT_EQ(al.stats().ok.load(), 1);
  EXPECT_EQ(al.stats().not_found.load(), 1);
}

TEST(UrlsTest, RoundTripHandles) {
  EXPECT_EQ(CompanyIdFromTwitterScreenName(TwitterScreenName(42)), 42u);
  EXPECT_EQ(CompanyIdFromFacebookPageId(FacebookPageId(42)), 42u);
  EXPECT_EQ(CompanyIdFromCrunchBasePermalink(CrunchBasePermalink(42)), 42u);
  EXPECT_EQ(CompanyIdFromTwitterScreenName("notahandle"), 0u);
  EXPECT_EQ(CompanyIdFromTwitterScreenName("startup"), 0u);
  EXPECT_EQ(CompanyIdFromTwitterScreenName("startup12x"), 0u);
}

}  // namespace
}  // namespace cfnet::net

namespace cfnet::net {
namespace {

TEST(ApiServiceTest, OutageWindowRejectsUntilItEnds) {
  ServiceConfig config = NoErrors({.latency_mean_micros = 80000});
  config.outage_windows = {{1000000, 5000000}};  // seconds 1..5 of virtual time
  AngelListService al(&TestWorld(), config);
  ApiRequest req("startups.get", {{"id", "1"}});

  int64_t t = 0;  // before the outage
  EXPECT_TRUE(al.Handle(req, &t).ok());

  t = 2000000;  // inside
  ApiResponse down = al.Handle(req, &t);
  EXPECT_EQ(down.status, 503);
  EXPECT_GT(al.stats().outage_rejections.load(), 0);

  t = 6000000;  // after
  EXPECT_TRUE(al.Handle(req, &t).ok());
}

}  // namespace
}  // namespace cfnet::net
