// Chaos-hardened durable storage tests: the scripted storage-fault injector
// (torn writes, silent fsync loss, ENOSPC, bit flips, short reads), the
// atomic write-temp/verify/rename commit protocol with its recovery sweeps,
// and the acceptance scenario — a randomized kill-anywhere sweep where the
// storage layer dies at a seeded mutation op mid-crawl and a fresh
// incarnation must recover to byte-identical snapshots with exactly-once
// records, across many seeds (CFNET_CHAOS_SEEDS overrides the count).

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/columnar_records.h"
#include "crawler/crawler.h"
#include "dfs/columnar.h"
#include "dfs/commit.h"
#include "dfs/dfs.h"
#include "dfs/fault_fs.h"
#include "dfs/jsonl.h"
#include "net/social_web.h"
#include "synth/world.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace cfnet::dfs {
namespace {

IoFaultWindow Always() { return IoFaultWindow{1, 0, 1.0}; }
IoFaultWindow OpOnly(uint64_t op) { return IoFaultWindow{op, op + 1, 1.0}; }

TEST(IoFaultInjectorTest, DecisionsAreDeterministicPerSeed) {
  IoFaultPlan plan;
  plan.torn_writes = {{1, 0, 0.3}};
  plan.enospc = {{1, 0, 0.1}};
  plan.short_reads = {{1, 0, 0.25}};
  plan.seed = 77;

  IoFaultInjector a(plan);
  IoFaultInjector b(plan);
  int faults_seen = 0;
  for (uint64_t op = 1; op <= 300; ++op) {
    WriteFaultDecision wa = a.EvaluateWrite(op);
    WriteFaultDecision wb = b.EvaluateWrite(op);
    EXPECT_EQ(wa.enospc, wb.enospc) << "op " << op;
    EXPECT_EQ(wa.torn, wb.torn) << "op " << op;
    EXPECT_EQ(wa.fraction, wb.fraction) << "op " << op;
    ReadFaultDecision ra = a.EvaluateRead(op);
    ReadFaultDecision rb = b.EvaluateRead(op);
    EXPECT_EQ(ra.short_read, rb.short_read) << "op " << op;
    EXPECT_EQ(ra.fraction, rb.fraction) << "op " << op;
    faults_seen += (wa.enospc || wa.torn) ? 1 : 0;
  }
  // Fractional rates actually fire (roughly 40% of 300 write ops).
  EXPECT_GT(faults_seen, 50);
  EXPECT_LT(faults_seen, 250);
}

TEST(IoFaultInjectorTest, WindowsBoundWhenFaultsFire) {
  IoFaultPlan plan;
  plan.enospc = {{10, 20, 1.0}};  // ops 10..19 only
  IoFaultInjector inj(plan);
  for (uint64_t op = 1; op < 30; ++op) {
    EXPECT_EQ(inj.EvaluateWrite(op).enospc, op >= 10 && op < 20) << op;
  }
}

TEST(MiniDfsFaultTest, EnospcFailsWithoutPersisting) {
  MiniDfs dfs;
  IoFaultPlan plan;
  plan.enospc = {OpOnly(1)};
  dfs.InstallFaultPlan(plan);
  Status s = dfs.WriteFile("/f", "hello");
  EXPECT_TRUE(s.IsResourceExhausted()) << s;
  EXPECT_FALSE(dfs.Exists("/f"));
  // Next op is outside the window.
  ASSERT_TRUE(dfs.WriteFile("/f", "hello").ok());
  EXPECT_EQ(*dfs.ReadFile("/f"), "hello");
  EXPECT_EQ(dfs.GetStats().storage_faults_injected, 1u);
}

TEST(MiniDfsFaultTest, TornWritePersistsStrictPrefix) {
  MiniDfs dfs;
  IoFaultPlan plan;
  plan.torn_writes = {OpOnly(1)};
  dfs.InstallFaultPlan(plan);
  const std::string data(1000, 'x');
  Status s = dfs.WriteFile("/f", data);
  EXPECT_EQ(s.code(), StatusCode::kIOError) << s;
  ASSERT_TRUE(dfs.Exists("/f"));
  EXPECT_LT(*dfs.FileSize("/f"), data.size());  // at least one byte lost
}

TEST(MiniDfsFaultTest, SilentLossReportsOkButDropsBytes) {
  MiniDfs dfs;
  IoFaultPlan plan;
  plan.silent_loss = {OpOnly(1)};
  dfs.InstallFaultPlan(plan);
  const std::string data(1000, 'x');
  // The write lies: OK, yet the file is short. Only read-back verification
  // (the commit protocol's job) can catch this.
  ASSERT_TRUE(dfs.WriteFile("/f", data).ok());
  EXPECT_LT(*dfs.FileSize("/f"), data.size());
}

TEST(MiniDfsFaultTest, WriteBitFlipEvadesBlockChecksums) {
  MiniDfs dfs;
  IoFaultPlan plan;
  plan.write_bit_flips = {OpOnly(1)};
  dfs.InstallFaultPlan(plan);
  const std::string data(256, 'a');
  ASSERT_TRUE(dfs.WriteFile("/f", data).ok());
  auto back = dfs.ReadFile("/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), data.size());
  EXPECT_NE(*back, data);  // one byte flipped...
  // ...and the replication layer cannot see it: block checksums were
  // computed from the already-flipped bytes, so every replica verifies.
  EXPECT_EQ(dfs.ScrubBlocks(), 0u);
}

TEST(MiniDfsFaultTest, ReadFaultsAreTransient) {
  MiniDfs dfs;
  ASSERT_TRUE(dfs.WriteFile("/f", std::string(500, 'z')).ok());
  IoFaultPlan plan;
  plan.short_reads = {OpOnly(1)};
  plan.read_bit_flips = {OpOnly(2)};
  dfs.InstallFaultPlan(plan);
  auto first = dfs.ReadFile("/f");   // read op 1: short
  ASSERT_TRUE(first.ok());
  EXPECT_LT(first->size(), 500u);
  auto second = dfs.ReadFile("/f");  // read op 2: flipped in flight
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), 500u);
  EXPECT_NE(*second, std::string(500, 'z'));
  auto third = dfs.ReadFile("/f");   // read op 3: clean again
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, std::string(500, 'z'));
}

TEST(MiniDfsKillTest, KillMidWriteHaltsEverythingUntilDisarm) {
  MiniDfs dfs;
  ASSERT_TRUE(dfs.WriteFile("/stable", "committed long ago").ok());  // op 1
  dfs.ArmKill(/*kill_at_op=*/2, /*seed=*/123);
  const std::string doomed(4096, 'd');
  Status died = dfs.WriteFile("/doomed", doomed);  // op 2: the kill
  EXPECT_TRUE(died.IsUnavailable()) << died;
  EXPECT_TRUE(dfs.killed());
  // Everything after the kill fails, like talking to a dead process.
  EXPECT_TRUE(dfs.ReadFile("/stable").status().IsUnavailable());
  EXPECT_TRUE(dfs.WriteFile("/other", "x").IsUnavailable());
  EXPECT_TRUE(dfs.Delete("/stable").IsUnavailable());
  EXPECT_TRUE(dfs.Rename("/stable", "/moved").IsUnavailable());

  // Restart: the disk survives as the dying writer left it — /stable whole,
  // /doomed an arbitrary strict prefix.
  dfs.DisarmKill();
  EXPECT_FALSE(dfs.killed());
  EXPECT_EQ(*dfs.ReadFile("/stable"), "committed long ago");
  if (dfs.Exists("/doomed")) {
    EXPECT_LT(*dfs.FileSize("/doomed"), doomed.size());
  }
}

TEST(MiniDfsRenameTest, RenameIsAnAtomicNamespaceMove) {
  MiniDfs dfs;
  ASSERT_TRUE(dfs.WriteFile("/a", "alpha").ok());
  ASSERT_TRUE(dfs.WriteFile("/b", "beta-old-content-to-replace").ok());

  ASSERT_TRUE(dfs.Rename("/a", "/c").ok());
  EXPECT_FALSE(dfs.Exists("/a"));
  EXPECT_EQ(*dfs.ReadFile("/c"), "alpha");

  // Replacing an existing target frees its blocks.
  const uint64_t files_before = dfs.GetStats().num_files;
  ASSERT_TRUE(dfs.Rename("/c", "/b").ok());
  EXPECT_EQ(*dfs.ReadFile("/b"), "alpha");
  EXPECT_EQ(dfs.GetStats().num_files, files_before - 1);

  EXPECT_TRUE(dfs.Rename("/nope", "/x").IsNotFound());
  ASSERT_TRUE(dfs.Rename("/b", "/b").ok());  // self-rename is a no-op
  EXPECT_EQ(*dfs.ReadFile("/b"), "alpha");
}

TEST(CommitProtocolTest, CommitWritesVerifiedFooterAndLeavesNoTemp) {
  MiniDfs dfs;
  const std::string payload = "{\"id\":1}\n{\"id\":2}\n";
  ASSERT_TRUE(CommitFile(&dfs, "/snap/part-0.jsonl", payload).ok());

  auto raw = dfs.ReadFile("/snap/part-0.jsonl");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), payload.size() + kCommitFooterSize);
  uint64_t len = 0;
  EXPECT_EQ(InspectFooter(*raw, &len), FooterState::kValid);
  EXPECT_EQ(len, payload.size());

  auto committed = ReadCommitted(&dfs, "/snap/part-0.jsonl");
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(*committed, payload);
  EXPECT_EQ(dfs.List("/snap/").size(), 1u);  // no .tmp residue
}

TEST(CommitProtocolTest, CommitRetriesThroughScriptedFaults) {
  MiniDfs dfs;
  IoFaultPlan plan;
  plan.enospc = {OpOnly(1)};
  plan.torn_writes = {OpOnly(2)};
  plan.silent_loss = {OpOnly(3)};  // only read-back verify can catch this one
  dfs.InstallFaultPlan(plan);
  int64_t clock = 0;
  CommitOptions opts;
  opts.clock_micros = &clock;
  ASSERT_TRUE(CommitFile(&dfs, "/f", "precious payload", opts).ok());
  EXPECT_EQ(*ReadCommitted(&dfs, "/f"), "precious payload");
  EXPECT_EQ(dfs.GetStats().storage_faults_injected, 3u);
  EXPECT_GT(clock, 0);  // retries charged backoff delays to the clock
}

TEST(CommitProtocolTest, FailedCommitPreservesOldContent) {
  MiniDfs dfs;
  ASSERT_TRUE(CommitFile(&dfs, "/f", "version 1").ok());
  IoFaultPlan plan;
  plan.torn_writes = {Always()};
  dfs.InstallFaultPlan(plan);
  EXPECT_FALSE(CommitFile(&dfs, "/f", "version 2").ok());
  dfs.InstallFaultPlan(IoFaultPlan{});
  // The old committed content is untouched and still verifies.
  EXPECT_EQ(*ReadCommitted(&dfs, "/f"), "version 1");
}

TEST(CommitProtocolTest, CommitAppendAdoptsLegacyRawFiles) {
  MiniDfs dfs;
  ASSERT_TRUE(dfs.WriteFile("/log", "old line\n").ok());  // raw, no footer
  ASSERT_TRUE(CommitAppend(&dfs, "/log", "new line\n").ok());
  EXPECT_EQ(*ReadCommitted(&dfs, "/log"), "old line\nnew line\n");
  auto raw = dfs.ReadFile("/log");
  EXPECT_EQ(InspectFooter(*raw, nullptr), FooterState::kValid);
}

TEST(SweepDirTest, RemovesOrphanedTempsAndQuarantinesBadFooters) {
  MiniDfs dfs;
  ASSERT_TRUE(CommitFile(&dfs, "/data/good.jsonl", "{\"id\":1}\n").ok());
  ASSERT_TRUE(dfs.WriteFile("/data/orphan.jsonl.tmp", "half a commi").ok());
  ASSERT_TRUE(dfs.WriteFile("/data/legacy.jsonl", "{\"id\":2}\n").ok());
  // A committed file whose payload rotted after the fact: flip one byte.
  ASSERT_TRUE(CommitFile(&dfs, "/data/rotten.jsonl", "{\"id\":3}\n").ok());
  std::string rotten = *dfs.ReadFile("/data/rotten.jsonl");
  rotten[2] ^= 0x10;
  ASSERT_TRUE(dfs.WriteFile("/data/rotten.jsonl", rotten).ok());

  RecoveryReport report = SweepDir(&dfs, "/data/");
  EXPECT_EQ(report.temp_files_removed, 1u);
  EXPECT_EQ(report.files_quarantined, 1u);
  ASSERT_EQ(report.quarantined_paths.size(), 1u);
  EXPECT_EQ(report.quarantined_paths[0], "/.quarantine/data/rotten.jsonl");

  // Good + legacy survive in place; the rotten bytes are preserved under
  // quarantine for inspection, not destroyed.
  std::vector<std::string> left = dfs.List("/data/");
  EXPECT_EQ(left, (std::vector<std::string>{"/data/good.jsonl",
                                            "/data/legacy.jsonl"}));
  EXPECT_TRUE(dfs.Exists("/.quarantine/data/rotten.jsonl"));
  // Idempotent: a second sweep finds nothing.
  EXPECT_TRUE(SweepDir(&dfs, "/data/").clean());
}

TEST(DurableWriterTest, FlushCommitsWithFooterAndSurvivesFaultBursts) {
  MiniDfs dfs;
  IoFaultPlan plan;  // every third write op hiccups
  plan.torn_writes = {{2, 3, 1.0}, {5, 6, 1.0}};
  plan.silent_loss = {{8, 9, 1.0}};
  dfs.InstallFaultPlan(plan);
  {
    JsonLinesWriter writer(&dfs, "/snap/part-0.jsonl", /*flush_bytes=*/16);
    for (int i = 0; i < 10; ++i) {
      json::Json r = json::Json::MakeObject();
      r.Set("id", i);
      ASSERT_TRUE(writer.Write(r).ok());
    }
    ASSERT_TRUE(writer.Flush().ok());
  }
  auto records = ReadJsonLines(dfs, "/snap/part-0.jsonl");
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*records)[static_cast<size_t>(i)].Get("id").AsInt(), i);
  }
  auto raw = dfs.ReadFile("/snap/part-0.jsonl");
  EXPECT_EQ(InspectFooter(*raw, nullptr), FooterState::kValid);
}

}  // namespace
}  // namespace cfnet::dfs

namespace cfnet::crawler {
namespace {

struct TestBed {
  std::unique_ptr<synth::World> world;
  std::unique_ptr<net::SocialWeb> web;
  std::unique_ptr<dfs::MiniDfs> dfs;
  std::unique_ptr<Crawler> crawler;
};

net::SocialWebConfig NoRandomErrors() {
  net::ServiceConfig plain;
  plain.transient_error_rate = 0;
  net::ServiceConfig with_token = plain;
  with_token.requires_token = true;
  net::SocialWebConfig wc;
  wc.angellist = plain;
  wc.crunchbase = plain;
  wc.facebook = with_token;
  wc.twitter = with_token;
  return wc;
}

TestBed MakeTestBed(CrawlConfig config) {
  TestBed bed;
  synth::WorldConfig wc;
  wc.scale = 0.002;
  wc.seed = 99;
  bed.world = std::make_unique<synth::World>(synth::World::Generate(wc));
  bed.web = std::make_unique<net::SocialWeb>(bed.world.get(), NoRandomErrors());
  bed.dfs = std::make_unique<dfs::MiniDfs>();
  config.num_workers = 4;
  bed.crawler =
      std::make_unique<Crawler>(bed.web.get(), bed.dfs.get(), config);
  return bed;
}

/// Order-independent content digest of one snapshot directory: CRC-32 over
/// the sorted set of record lines (footers stripped). Byte-identical record
/// sets — regardless of which worker shard a record landed in — digest
/// equal; any lost, duplicated or damaged record changes the digest.
uint32_t DirDigest(const dfs::MiniDfs& d, const std::string& dir) {
  std::vector<std::string> lines;
  for (const std::string& path : d.List(dir)) {
    auto content = d.ReadFile(path);
    EXPECT_TRUE(content.ok()) << path;
    if (!content.ok()) continue;
    uint64_t payload_len = 0;
    if (dfs::InspectFooter(*content, &payload_len) ==
        dfs::FooterState::kValid) {
      content->resize(payload_len);
    }
    size_t start = 0;
    while (start < content->size()) {
      size_t end = content->find('\n', start);
      if (end == std::string::npos) end = content->size();
      if (end > start) lines.push_back(content->substr(start, end - start));
      start = end + 1;
    }
  }
  std::sort(lines.begin(), lines.end());
  uint32_t crc = 0;
  for (const std::string& line : lines) {
    crc = Crc32Update(crc, line);
    crc = Crc32Update(crc, std::string_view("\n"));
  }
  return crc;
}

std::map<std::string, uint32_t> AllDigests(const dfs::MiniDfs& d,
                                           const Crawler& c) {
  return {{"startups", DirDigest(d, c.StartupSnapshotDir())},
          {"users", DirDigest(d, c.UserSnapshotDir())},
          {"crunchbase", DirDigest(d, c.CrunchBaseSnapshotDir())},
          {"facebook", DirDigest(d, c.FacebookSnapshotDir())},
          {"twitter", DirDigest(d, c.TwitterSnapshotDir())}};
}

/// Asserts no record id appears twice across a directory's shards.
std::set<int64_t> UniqueSnapshotIds(const dfs::MiniDfs& d,
                                    const std::string& dir) {
  std::set<int64_t> ids;
  for (const std::string& path : d.List(dir)) {
    auto records = dfs::ReadJsonLines(d, path);
    EXPECT_TRUE(records.ok()) << path;
    if (!records.ok()) continue;
    for (const json::Json& r : *records) {
      int64_t id = r.Get("id").AsInt();
      EXPECT_TRUE(ids.insert(id).second)
          << "duplicate snapshot record id " << id << " in " << dir;
    }
  }
  return ids;
}

int ChaosSeedCount() {
  if (const char* env = std::getenv("CFNET_CHAOS_SEEDS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 100;
}

// The acceptance sweep: for each seed, arm the kill switch at a random
// mutation op (spanning the whole crawl: first snapshot flush to final
// checkpoint) with background storage faults scripted on top, let the
// crawl die, then restart storage and resume with a fresh crawler. Every
// seed must recover to exactly the uninterrupted run: same record sets
// (exactly-once), byte-identical snapshot content, same analytics counters.
TEST(CrashRecoverySweepTest, KillAnywhereRecoversExactlyOnce) {
  CrawlConfig config;
  config.checkpoint_every_rounds = 2;
  config.checkpoint_chunk = 64;

  // Uninterrupted baseline.
  TestBed clean = MakeTestBed(config);
  ASSERT_TRUE(clean.crawler->Run().ok());
  const CrawlReport& want = clean.crawler->report();
  const uint64_t total_ops = clean.dfs->GetStats().mutation_ops;
  ASSERT_GT(total_ops, 10u);
  const std::map<std::string, uint32_t> want_digests =
      AllDigests(*clean.dfs, *clean.crawler);
  const std::set<int64_t> want_startups =
      UniqueSnapshotIds(*clean.dfs, clean.crawler->StartupSnapshotDir());
  const std::set<int64_t> want_users =
      UniqueSnapshotIds(*clean.dfs, clean.crawler->UserSnapshotDir());

  const int seeds = ChaosSeedCount();
  int64_t total_temps_removed = 0;
  int64_t resumed_from_checkpoint = 0;
  int64_t restarted_from_scratch = 0;
  for (int seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    TestBed bed = MakeTestBed(config);

    // Background faults the commit protocol must ride out, plus the kill.
    dfs::IoFaultPlan plan;
    plan.seed = 1000 + static_cast<uint64_t>(seed);
    plan.torn_writes = {{1, 0, 0.02}};
    plan.silent_loss = {{1, 0, 0.02}};
    plan.enospc = {{1, 0, 0.02}};
    plan.write_bit_flips = {{1, 0, 0.01}};
    bed.dfs->InstallFaultPlan(plan);
    const uint64_t kill_at =
        1 + Mix64(0xC0FFEEull ^ static_cast<uint64_t>(seed)) % total_ops;
    bed.dfs->ArmKill(kill_at, /*seed=*/static_cast<uint64_t>(seed) * 7919 + 1);

    Status died = bed.crawler->Run();
    ASSERT_FALSE(died.ok()) << "kill at op " << kill_at << " never surfaced";
    // Usually the kill switch is what felled the run; occasionally the
    // background fault rates exhaust a commit's retries first. Both are
    // crashes the next incarnation must recover from identically.
    bed.crawler.reset();

    // "Restart": storage comes back with the disk exactly as the dying
    // process left it; no scripted faults in the recovery run.
    bed.dfs->DisarmKill();
    bed.dfs->InstallFaultPlan(dfs::IoFaultPlan{});
    bed.crawler =
        std::make_unique<Crawler>(bed.web.get(), bed.dfs.get(), config);
    Status recovered = bed.crawler->Resume();
    ASSERT_TRUE(recovered.ok()) << recovered;

    const CrawlReport& got = bed.crawler->report();
    EXPECT_EQ(got.companies_crawled, want.companies_crawled);
    EXPECT_EQ(got.users_crawled, want.users_crawled);
    EXPECT_EQ(got.crunchbase_profiles, want.crunchbase_profiles);
    EXPECT_EQ(got.facebook_profiles, want.facebook_profiles);
    EXPECT_EQ(got.twitter_profiles, want.twitter_profiles);
    total_temps_removed += got.storage_temps_removed;
    resumed_from_checkpoint += got.checkpoint_restores > 0 ? 1 : 0;
    restarted_from_scratch += got.checkpoint_restores > 0 ? 0 : 1;

    // Exactly-once: same id sets, and byte-identical snapshot content.
    EXPECT_EQ(UniqueSnapshotIds(*bed.dfs, bed.crawler->StartupSnapshotDir()),
              want_startups);
    EXPECT_EQ(UniqueSnapshotIds(*bed.dfs, bed.crawler->UserSnapshotDir()),
              want_users);
    EXPECT_EQ(AllDigests(*bed.dfs, *bed.crawler), want_digests);
  }
  // The sweep must actually exercise both recovery paths: kills landing
  // before the first checkpoint restart from scratch, later ones resume.
  if (seeds >= 20) {
    EXPECT_GT(resumed_from_checkpoint, 0);
    EXPECT_GT(restarted_from_scratch, 0);
    // And kills tear commits often enough that the sweep GC is exercised.
    EXPECT_GT(total_temps_removed, 0);
  }
}

// The columnar-commit sweep: snapshot compaction rewrites a multi-kilobyte
// .cfc file through the same write-temp/verify/rename protocol as every
// other commit, so a crash at ANY mutation op inside the recompaction must
// leave either the previous columnar file or the complete new one — never a
// torn block stream. Each seed kills the storage layer at a different op
// inside a recompaction (with background write faults scripted on top),
// sweeps the directory like a restarting process would, proves whatever
// survived still scans strictly, and re-runs the compaction to converge on
// the byte-identical uninterrupted result.
TEST(CrashRecoverySweepTest, KillAnywhereDuringColumnarCommit) {
  const std::string dir = "/snap/facebook/";
  const std::string col_path = core::ColumnarPathFor(dir);
  std::string shard0, shard1;
  for (int i = 0; i < 48; ++i) {
    shard0 += "{\"angellist_id\":" + std::to_string(100 + i) +
              ",\"fan_count\":" + std::to_string(i * 13) + "}\n";
  }
  for (int i = 0; i < 19; ++i) {
    shard1 += "{\"angellist_id\":" + std::to_string(700 + i) +
              ",\"fan_count\":" + std::to_string(5000 - i) + "}\n";
  }

  // Uninterrupted baseline: compact version A (one shard), land a second
  // shard (the dead-letter-replay shape) and recompact to version B.
  std::string bytes_a, bytes_b;
  uint64_t ops_before = 0, ops_after = 0;
  {
    dfs::MiniDfs d;
    ASSERT_TRUE(dfs::CommitFile(&d, dir + "part-0.jsonl", shard0).ok());
    ASSERT_TRUE(
        core::CompactSnapshotDir<core::FacebookRecord>(&d, dir, nullptr, 16)
            .ok());
    auto a = d.ReadFile(col_path);
    ASSERT_TRUE(a.ok());
    bytes_a = *a;
    ASSERT_TRUE(dfs::CommitFile(&d, dir + "part-1.jsonl", shard1).ok());
    ops_before = d.GetStats().mutation_ops;
    ASSERT_TRUE(
        core::CompactSnapshotDir<core::FacebookRecord>(&d, dir, nullptr, 16)
            .ok());
    ops_after = d.GetStats().mutation_ops;
    auto b = d.ReadFile(col_path);
    ASSERT_TRUE(b.ok());
    bytes_b = *b;
  }
  ASSERT_GT(ops_after, ops_before);
  ASSERT_NE(bytes_a, bytes_b);

  const int seeds = ChaosSeedCount();
  int64_t total_temps_removed = 0;
  int64_t kept_old = 0;
  int64_t kept_new = 0;
  for (int seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("columnar chaos seed " + std::to_string(seed));
    dfs::MiniDfs d;
    ASSERT_TRUE(dfs::CommitFile(&d, dir + "part-0.jsonl", shard0).ok());
    ASSERT_TRUE(
        core::CompactSnapshotDir<core::FacebookRecord>(&d, dir, nullptr, 16)
            .ok());
    ASSERT_TRUE(dfs::CommitFile(&d, dir + "part-1.jsonl", shard1).ok());
    ASSERT_EQ(d.GetStats().mutation_ops, ops_before);

    // Background faults the recompaction must ride out, plus a kill pinned
    // to one of its mutation ops. Faults only ever add retry ops, so the
    // kill op is always reached before the final rename can land.
    dfs::IoFaultPlan plan;
    plan.seed = 4000 + static_cast<uint64_t>(seed);
    plan.torn_writes = {{1, 0, 0.05}};
    plan.enospc = {{1, 0, 0.05}};
    plan.write_bit_flips = {{1, 0, 0.02}};
    d.InstallFaultPlan(plan);
    const uint64_t kill_at =
        ops_before + 1 +
        Mix64(0x5EEDC0DEull ^ static_cast<uint64_t>(seed)) %
            (ops_after - ops_before);
    d.ArmKill(kill_at, /*seed=*/static_cast<uint64_t>(seed) * 6151 + 3);

    Status died =
        core::CompactSnapshotDir<core::FacebookRecord>(&d, dir, nullptr, 16);
    ASSERT_FALSE(died.ok()) << "kill at op " << kill_at << " never surfaced";

    // Restart: disarm, sweep orphaned temps, and check the all-or-nothing
    // promise for the columnar file itself.
    d.DisarmKill();
    d.InstallFaultPlan(dfs::IoFaultPlan{});
    total_temps_removed +=
        static_cast<int64_t>(dfs::SweepDir(&d, dir).temp_files_removed);

    auto raw = d.ReadFile(col_path);
    ASSERT_TRUE(raw.ok());
    const bool old_version = (*raw == bytes_a);
    const bool new_version = (*raw == bytes_b);
    ASSERT_TRUE(old_version || new_version)
        << "torn columnar file survived the crash";
    kept_old += old_version ? 1 : 0;
    kept_new += new_version ? 1 : 0;

    // Whatever survived must still scan strictly: every block CRC-clean.
    dfs::ScanReport rep;
    dfs::ScanOptions scan;
    scan.report = &rep;
    auto parts =
        dfs::ScanColumnBlocks<core::FacebookRecord>(d, {col_path}, scan);
    ASSERT_TRUE(parts.ok());
    EXPECT_EQ(rep.columnar_blocks_failed, 0u);

    // Recovery converges: one clean recompaction lands exactly version B.
    ASSERT_TRUE(
        core::CompactSnapshotDir<core::FacebookRecord>(&d, dir, nullptr, 16)
            .ok());
    auto healed = d.ReadFile(col_path);
    ASSERT_TRUE(healed.ok());
    EXPECT_EQ(*healed, bytes_b);
  }
  EXPECT_EQ(kept_old + kept_new, seeds);
  if (seeds >= 20) {
    // Kills mid-temp-write must actually leave orphans for the sweep GC,
    // and at least some seeds must die before the new file lands.
    EXPECT_GT(total_temps_removed, 0);
    EXPECT_GT(kept_old, 0);
  }
}

}  // namespace
}  // namespace cfnet::crawler
