// Longitudinal study (paper §7, "future work", implemented): a daily data-
// collection task re-crawls the currently-fundraising cohort while the
// simulated ecosystem evolves — campaigns close, engagement drifts, new
// rounds happen. The time-resolved data supports the causality-flavored
// question the one-shot crawl cannot answer: do eventual winners show
// faster social-engagement growth *before* their campaign closes?
// Also tracks community dynamics (§7's "formation or disbanding of
// community clusters over time") by re-running CoDA on weekly snapshots.
//
// Usage: longitudinal_tracking [--scale=0.02] [--days=28]

#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "community/coda.h"
#include "crawler/periodic.h"
#include "dfs/jsonl.h"
#include "graph/bipartite_graph.h"
#include "net/social_web.h"
#include "synth/world.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace cfnet;

namespace {

/// One company's tracked trajectory.
struct Track {
  int64_t followers_day0 = -1;
  int64_t followers_last = -1;
  int days_observed = 0;
  bool succeeded = false;
  bool closed = false;
};

/// Daily targeted crawl via the library's PeriodicCohortCrawler, folding
/// the stored snapshot back into the per-company tracks.
std::vector<uint64_t> CrawlRaisingCohort(net::SocialWeb& web,
                                         crawler::PeriodicCohortCrawler& daily,
                                         int day,
                                         std::map<uint64_t, Track>& tracks) {
  auto report = daily.CrawlDay(&web, day);
  if (!report.ok()) {
    std::fprintf(stderr, "day %d crawl failed: %s\n", day,
                 report.status().ToString().c_str());
    return {};
  }
  std::vector<uint64_t> raising;
  auto records = daily.ReadDay(day);
  if (!records.ok()) return raising;
  for (const json::Json& record : *records) {
    uint64_t id = static_cast<uint64_t>(record.Get("id").AsInt());
    raising.push_back(id);
    Track& track = tracks[id];
    if (record.Has("twitter_followers")) {
      int64_t followers = record.Get("twitter_followers").AsInt();
      if (track.followers_day0 < 0) track.followers_day0 = followers;
      track.followers_last = followers;
    }
    ++track.days_observed;
  }
  return raising;
}

/// Jaccard similarity of two overlapping community covers, greedy-matched.
double CommunityCoverSimilarity(const community::CommunitySet& a,
                                const community::CommunitySet& b) {
  if (a.communities.empty() || b.communities.empty()) return 0;
  double total = 0;
  for (const auto& ca : a.communities) {
    std::unordered_set<uint32_t> sa(ca.begin(), ca.end());
    double best = 0;
    for (const auto& cb : b.communities) {
      size_t inter = 0;
      for (uint32_t v : cb) inter += sa.count(v);
      double uni = static_cast<double>(sa.size() + cb.size() - inter);
      if (uni > 0) best = std::max(best, static_cast<double>(inter) / uni);
    }
    total += best;
  }
  return total / static_cast<double>(a.communities.size());
}

graph::BipartiteGraph TruthGraph(const synth::World& world) {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (const auto& u : world.users()) {
    for (synth::CompanyId c : u.investments) edges.emplace_back(u.id, c);
  }
  return graph::BipartiteGraph::FromEdges(edges);
}

community::CommunitySet DetectWeekly(const synth::World& world) {
  community::CodaConfig config;
  config.num_communities = 48;
  config.max_iterations = 15;
  return community::Coda(config)
      .Fit(TruthGraph(world).FilterLeftByMinDegree(4))
      .investor_communities;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int days = static_cast<int>(flags.GetInt("days", 28));

  synth::WorldConfig config;
  config.scale = flags.GetDouble("scale", 0.02);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 20160626));
  synth::World world = synth::World::Generate(config);
  dfs::MiniDfs dfs;
  Rng rng(config.seed ^ 0xfeedULL);

  std::printf("Tracking the fundraising cohort of a scale-%.2f world for %d "
              "days...\n\n",
              config.scale, days);

  std::map<uint64_t, Track> tracks;
  crawler::PeriodicCohortCrawler cohort_crawler(&dfs);
  community::CommunitySet week0_communities;
  community::CommunitySet latest_communities;

  AsciiTable daily_table({"day", "raising", "closed", "succeeded", "launched",
                    "new investments"});
  for (int day = 0; day < days; ++day) {
    // Services cache pieces of the world (e.g. the raising list), so each
    // daily crawl gets a fresh SocialWeb over the evolving world — exactly
    // like hitting the live APIs again.
    net::SocialWeb web(&world);
    std::vector<uint64_t> raising = CrawlRaisingCohort(web, cohort_crawler, day, tracks);

    synth::World::DayReport report = world.EvolveOneDay(rng);
    for (const auto& c : world.companies()) {
      auto it = tracks.find(c.id);
      if (it != tracks.end() && !c.currently_raising && !it->second.closed) {
        it->second.closed = true;
        it->second.succeeded = c.raised_funding;
      }
    }
    if (day % 7 == 0 || day == days - 1) {
      daily_table.AddRow({std::to_string(day),
                    std::to_string(raising.size()),
                    std::to_string(report.campaigns_closed),
                    std::to_string(report.campaigns_succeeded),
                    std::to_string(report.campaigns_launched),
                    std::to_string(report.new_investments)});
    }
    if (day == 0) week0_communities = DetectWeekly(world);
    if (day == days - 1) latest_communities = DetectWeekly(world);
  }
  std::printf("%s", daily_table.Render().c_str());

  // --- causality-flavored analysis: engagement growth BEFORE close. ------
  double growth_winners = 0;
  double growth_losers = 0;
  int n_winners = 0;
  int n_losers = 0;
  for (const auto& [id, track] : tracks) {
    if (!track.closed || track.followers_day0 <= 0 ||
        track.days_observed < 2) {
      continue;
    }
    double growth =
        (static_cast<double>(track.followers_last) -
         static_cast<double>(track.followers_day0)) /
        static_cast<double>(track.followers_day0) /
        static_cast<double>(track.days_observed);
    if (track.succeeded) {
      growth_winners += growth;
      ++n_winners;
    } else {
      growth_losers += growth;
      ++n_losers;
    }
  }
  std::printf("\nTwitter-follower growth per observed day, measured while "
              "the campaign was still open:\n");
  std::printf("  eventual winners: %+.2f%%/day (n=%d)\n",
              n_winners > 0 ? 100 * growth_winners / n_winners : 0, n_winners);
  std::printf("  eventual losers:  %+.2f%%/day (n=%d)\n",
              n_losers > 0 ? 100 * growth_losers / n_losers : 0, n_losers);
  std::printf("  (the one-shot §4 analysis cannot make this distinction — "
              "it only sees the post-hoc snapshot)\n");

  // --- community dynamics (§7). -------------------------------------------
  double similarity =
      CommunityCoverSimilarity(week0_communities, latest_communities);
  std::printf("\nCommunity dynamics: day-0 vs day-%d CoDA covers, mean "
              "best-match Jaccard = %.2f\n",
              days - 1, similarity);
  std::printf("(%zu -> %zu communities; herding persists, membership "
              "drifts as new rounds close)\n",
              week0_communities.communities.size(),
              latest_communities.communities.size());

  auto files = dfs.List("/longitudinal/");
  uint64_t bytes = 0;
  for (const auto& f : files) {
    auto size = dfs.FileSize(f);
    if (size.ok()) bytes += *size;
  }
  std::printf("\n%zu daily snapshots stored in MiniDFS (%s bytes).\n",
              files.size(), WithThousandsSeparators(static_cast<int64_t>(bytes)).c_str());
  return 0;
}
