// Serving-tier walkthrough: crawl a small world, publish its investor graph
// as a query snapshot, and drive the overload-hardened service — a founder
// asking for investor recommendations, a prefix search, the community
// facets — then trip the recommendation class into degraded mode and watch
// it recover, and hot-swap a fresh snapshot while queries are in flight.
//
// Usage: serve_demo [--scale=0.01] [--workers=4] [--seed=20160626]

#include <cstdio>
#include <string>

#include "core/investor_graph.h"
#include "core/platform.h"
#include "serve/epoch_store.h"
#include "serve/load_gen.h"
#include "serve/service.h"
#include "serve/serving_snapshot.h"
#include "util/flags.h"

using namespace cfnet;

namespace {

serve::SnapshotBuildOptions NameResolvers(const synth::World& world) {
  serve::SnapshotBuildOptions build;
  build.investor_name = [&world](uint64_t id) {
    const synth::UserTruth* u = world.FindUser(id);
    return u != nullptr ? u->name : "investor-" + std::to_string(id);
  };
  build.company_name = [&world](uint64_t id) {
    const synth::CompanyTruth* c = world.FindCompany(id);
    return c != nullptr ? c->name : "company-" + std::to_string(id);
  };
  return build;
}

void ShowResponse(const char* title, const serve::QueryResponse& resp) {
  std::printf("\n-- %s (status %d%s%s, epoch %llu, %lld us)\n", title,
              resp.status, resp.degraded ? ", degraded" : "",
              resp.cache_hit ? ", cache hit" : "",
              static_cast<unsigned long long>(resp.epoch),
              static_cast<long long>(resp.total_micros));
  std::printf("%s\n", resp.body->Dump(2).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);

  core::ExploratoryPlatform::Options options;
  options.world.scale = flags.GetDouble("scale", 0.01);
  options.world.seed = static_cast<uint64_t>(flags.GetInt("seed", 20160626));
  options.crawl.num_workers = static_cast<int>(flags.GetInt("workers", 4));

  std::printf("== cfnet serving tier demo ==\n");
  core::ExploratoryPlatform platform(options);
  Status s = platform.CollectData();
  if (!s.ok()) {
    std::fprintf(stderr, "crawl failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto inputs = platform.LoadInputs();
  if (!inputs.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 inputs.status().ToString().c_str());
    return 1;
  }
  graph::BipartiteGraph g =
      core::BuildInvestorGraph(platform.context(), inputs.value());
  std::printf("investor graph: %zu investors, %zu companies, %zu edges\n",
              g.num_left(), g.num_right(), g.num_edges());

  // Publish the first query snapshot (communities, centrality, name index).
  serve::SnapshotBuildOptions build = NameResolvers(platform.world());
  serve::EpochStore<serve::ServingSnapshot> store;
  store.Publish(serve::BuildServingSnapshot(1, g, build));

  serve::QueryServiceConfig config;
  config.worker_threads = 2;
  serve::QueryService service(&store, config);

  // A founder: who should invest in this startup? Seeds are the startup's
  // existing investors; candidates come from co-investment + community
  // overlap, existing investors excluded.
  const uint64_t startup_id = g.RightId(0);
  ShowResponse(
      "founder: investors.recommend",
      service.Call(serve::QueryRequest(
          "investors.recommend",
          {{"startup_id", std::to_string(startup_id)}, {"k", "3"}})));

  // A job seeker: prefix search, ranked by centrality.
  auto pin = store.Acquire();
  const std::string prefix = pin->investors.front().name_lower.substr(0, 2);
  ShowResponse("job seeker: investors.search",
               service.Call(serve::QueryRequest(
                   "investors.search", {{"q", prefix}, {"k", "3"}})));

  // An investor: the community landscape (precomputed facet).
  ShowResponse("investor: facets.communities",
               service.Call(serve::QueryRequest("facets.communities")));

  // Overload behavior: a short closed-loop burst of mixed personas.
  serve::WorkloadGenerator gen(*pin, serve::PersonaMix{});
  pin = serve::EpochStore<serve::ServingSnapshot>::Pin{};
  serve::ClosedLoopConfig burst;
  burst.clients = 4;
  burst.duration_micros = 300'000;
  serve::LoadResult r = RunClosedLoop(service, gen, burst);
  std::printf(
      "\n-- burst: %lld requests, %lld served (%.0f rps goodput), "
      "p99 %lld us, %lld degraded, %lld shed, 0 torn=%s\n",
      static_cast<long long>(r.issued), static_cast<long long>(r.served),
      r.goodput_rps, static_cast<long long>(r.latency_p99_micros),
      static_cast<long long>(r.degraded),
      static_cast<long long>(r.shed_queue_full + r.shed_deadline),
      r.torn_responses == 0 ? "yes" : "NO");

  // Hot-swap: publish a fresh epoch while the service keeps answering. The
  // epoch-keyed cache makes the swap an implicit invalidation.
  store.Publish(serve::BuildServingSnapshot(2, g, build));
  ShowResponse("after hot-swap: facets.communities (fresh epoch)",
               service.Call(serve::QueryRequest("facets.communities")));

  std::printf("\nservice stats:\n%s\n", service.StatsJson().Dump(2).c_str());
  return 0;
}
