// Success prediction (paper §7, "future work", implemented): trains a
// logistic-regression model from company profile, social-engagement and
// investor-graph features to fundraising success, with L1 feature
// selection to surface which graph statistics carry signal — and compares
// a graph-features-on vs graph-features-off model, testing the paper's
// hypothesis that network position predicts outcomes.
//
// Usage: success_prediction [--scale=0.05] [--l1=0.002]

#include <cmath>
#include <cstdio>

#include "core/investor_graph.h"
#include "core/platform.h"
#include "core/prediction.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace cfnet;

namespace {

void PrintModel(const char* title, const core::PredictionResult& model) {
  std::printf("\n%s\n", title);
  std::printf("  train n=%zu, test n=%zu; train AUC %.3f, TEST AUC %.3f, "
              "test log-loss %.4f\n",
              model.train_size, model.test_size, model.train_auc,
              model.test_auc, model.test_log_loss);
  std::printf("  top-decile lift: %.1fx the base success rate\n",
              model.top_decile_lift);
  AsciiTable table({"feature", "weight (standardized)"});
  for (size_t k = 0; k < model.feature_names.size(); ++k) {
    table.AddRow({model.feature_names[k],
                  StrFormat("%+.4f%s", model.weights[k],
                            std::fabs(model.weights[k]) < 1e-9 ? "  (pruned)"
                                                               : "")});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);

  core::ExploratoryPlatform::Options options;
  options.world.scale = flags.GetDouble("scale", 0.05);
  options.crawl.num_workers = static_cast<int>(flags.GetInt("workers", 8));
  core::ExploratoryPlatform platform(options);
  std::printf("Crawling a scale-%.2f world...\n", options.world.scale);
  if (Status s = platform.CollectData(); !s.ok()) {
    std::fprintf(stderr, "crawl failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto inputs = platform.LoadInputs();
  if (!inputs.ok()) {
    std::fprintf(stderr, "load failed: %s\n", inputs.status().ToString().c_str());
    return 1;
  }
  graph::BipartiteGraph investor_graph =
      core::BuildInvestorGraph(platform.context(), *inputs);

  core::TrainConfig config;
  config.l1 = flags.GetDouble("l1", 0.002);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 20160626));

  // Full model (profile + engagement + graph features).
  auto full_examples = core::BuildSuccessFeatures(
      platform.context(), *inputs, investor_graph, /*include_graph=*/true);
  core::PredictionResult full =
      core::TrainSuccessPredictor(full_examples, config);
  PrintModel("Full model (profile + engagement + investor-graph features):",
             full);

  // Ablated model: no graph features.
  auto no_graph_examples = core::BuildSuccessFeatures(
      platform.context(), *inputs, investor_graph, /*include_graph=*/false);
  core::PredictionResult no_graph =
      core::TrainSuccessPredictor(no_graph_examples, config);
  PrintModel("Ablated model (graph features zeroed):", no_graph);

  std::printf("\nGraph features move test AUC %.3f -> %.3f — %s the §7 "
              "hypothesis that network position predicts fundraising "
              "success.\n",
              no_graph.test_auc, full.test_auc,
              full.test_auc > no_graph.test_auc + 0.01 ? "supporting"
                                                       : "not supporting");
  std::printf("(Caveat: investor in-degree is partly an outcome of funding, "
              "not only a predictor — the longitudinal pipeline is the "
              "place to separate the two.)\n");
  return 0;
}
