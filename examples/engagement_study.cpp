// Social-engagement deep dive (paper §4, extended): beyond the Figure 6
// medians, sweeps engagement thresholds by quantile to show how success
// probability scales with engagement depth — the kind of custom analytics
// the "extensible exploratory platform" is meant to make easy. Everything
// below is expressed as MiniSpark pipelines over the crawled snapshots.
//
// Usage: engagement_study [--scale=0.05] [--workers=8]

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "core/engagement_analysis.h"
#include "core/platform.h"
#include "dataflow/dataset.h"
#include "stats/stats.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace cfnet;
using dataflow::Dataset;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);

  core::ExploratoryPlatform::Options options;
  options.world.scale = flags.GetDouble("scale", 0.05);
  options.crawl.num_workers = static_cast<int>(flags.GetInt("workers", 8));
  core::ExploratoryPlatform platform(options);
  std::printf("Crawling a scale-%.2f world...\n", options.world.scale);
  if (Status s = platform.CollectData(); !s.ok()) {
    std::fprintf(stderr, "crawl failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto inputs = platform.LoadInputs();
  if (!inputs.ok()) {
    std::fprintf(stderr, "load failed: %s\n", inputs.status().ToString().c_str());
    return 1;
  }
  auto ctx = platform.context();

  // The standard Figure 6 table first.
  core::EngagementTable table = core::AnalyzeEngagement(ctx, *inputs);
  std::printf("\n%lld companies crawled; %lld (%.2f%%) raised funding.\n",
              static_cast<long long>(table.total_companies),
              static_cast<long long>(table.funded_companies),
              100.0 * static_cast<double>(table.funded_companies) /
                  static_cast<double>(table.total_companies));

  // --- custom analysis 1: success vs Facebook-likes quantile bucket. -----
  auto funded_ids =
      Dataset<core::CrunchBaseRecord>::FromVector(ctx, inputs->crunchbase)
          .Filter([](const core::CrunchBaseRecord& r) { return r.funded(); })
          .Map([](const core::CrunchBaseRecord& r) { return r.angellist_id; })
          .Collect();
  auto funded = std::make_shared<std::unordered_set<uint64_t>>(
      funded_ids.begin(), funded_ids.end());

  auto fb = Dataset<core::FacebookRecord>::FromVector(ctx, inputs->facebook);
  std::vector<double> likes = fb.Map([](const core::FacebookRecord& r) {
                                  return static_cast<double>(r.fan_count);
                                }).Collect();
  stats::Ecdf likes_ecdf(std::move(likes));

  std::printf("\nSuccess rate by Facebook-likes quantile bucket:\n");
  AsciiTable buckets({"likes bucket", "companies", "% success"});
  const double qs[] = {0.0, 0.25, 0.5, 0.75, 0.9, 1.0};
  for (size_t b = 0; b + 1 < std::size(qs); ++b) {
    double lo = b == 0 ? -1 : likes_ecdf.Quantile(qs[b]);
    double hi = likes_ecdf.Quantile(qs[b + 1]);
    auto in_bucket = fb.Filter([lo, hi](const core::FacebookRecord& r) {
      double v = static_cast<double>(r.fan_count);
      return v > lo && v <= hi;
    });
    size_t n = in_bucket.Count();
    size_t succ = in_bucket
                      .Filter([funded](const core::FacebookRecord& r) {
                        return funded->count(r.angellist_id) > 0;
                      })
                      .Count();
    buckets.AddRow({StrFormat("p%.0f-p%.0f (%.0f, %.0f]", qs[b] * 100,
                              qs[b + 1] * 100, lo, hi),
                    std::to_string(n),
                    n == 0 ? "-" : StrFormat("%.1f%%", 100.0 * succ / n)});
  }
  std::printf("%s", buckets.Render().c_str());

  // --- custom analysis 2: does follower count on AngelList itself predict
  // funding? (follower_count joined against funding outcome) -------------
  auto startups = Dataset<core::StartupRecord>::FromVector(ctx, inputs->startups);
  struct Acc {
    int64_t n = 0;
    int64_t succ = 0;
    Acc Add(const Acc& o) const { return {n + o.n, succ + o.succ}; }
  };
  std::printf("\nSuccess rate by AngelList follower count:\n");
  AsciiTable frows({"followers", "companies", "% success"});
  const int64_t cuts[] = {0, 10, 30, 100, 1000000000};
  for (size_t b = 0; b + 1 < std::size(cuts); ++b) {
    int64_t lo = cuts[b];
    int64_t hi = cuts[b + 1];
    Acc acc = startups
                  .Filter([lo, hi](const core::StartupRecord& s) {
                    return s.follower_count >= lo && s.follower_count < hi;
                  })
                  .Map([funded](const core::StartupRecord& s) {
                    return Acc{1, funded->count(s.id) > 0 ? 1 : 0};
                  })
                  .Reduce([](const Acc& a, const Acc& o) { return a.Add(o); },
                          Acc{});
    frows.AddRow({hi == 1000000000 ? StrFormat(">= %lld", (long long)lo)
                                   : StrFormat("[%lld, %lld)", (long long)lo,
                                               (long long)hi),
                  WithThousandsSeparators(acc.n),
                  acc.n == 0 ? "-"
                             : StrFormat("%.1f%%", 100.0 * acc.succ / acc.n)});
  }
  std::printf("%s", frows.Render().c_str());

  // --- custom analysis 3: engagement synergy matrix (FB x TW medians). ---
  std::printf("\nSuccess %% by (likes vs median) x (followers vs median):\n");
  auto tw = Dataset<core::TwitterRecord>::FromVector(ctx, inputs->twitter);
  std::unordered_map<uint64_t, int64_t> tw_followers;
  for (const auto& r : tw.Collect()) {
    if (!r.followers_count_null) tw_followers[r.angellist_id] = r.followers_count;
  }
  double likes_med = table.fb_likes_median;
  double followers_med = table.tw_followers_median;
  AsciiTable synergy({"", "TW followers <= median", "TW followers > median"});
  for (int fb_hi = 0; fb_hi <= 1; ++fb_hi) {
    std::vector<std::string> row = {fb_hi ? "FB likes > median"
                                          : "FB likes <= median"};
    for (int tw_hi = 0; tw_hi <= 1; ++tw_hi) {
      Acc acc = fb.Map([&, fb_hi, tw_hi](const core::FacebookRecord& r) {
                    auto it = tw_followers.find(r.angellist_id);
                    if (it == tw_followers.end()) return Acc{0, 0};
                    bool f_hi = static_cast<double>(r.fan_count) > likes_med;
                    bool t_hi = static_cast<double>(it->second) > followers_med;
                    if (f_hi != (fb_hi == 1) || t_hi != (tw_hi == 1)) {
                      return Acc{0, 0};
                    }
                    return Acc{1, funded->count(r.angellist_id) > 0 ? 1 : 0};
                  })
                    .Reduce([](const Acc& a, const Acc& o) { return a.Add(o); },
                            Acc{});
      row.push_back(acc.n == 0
                        ? "-"
                        : StrFormat("%.1f%% (n=%lld)", 100.0 * acc.succ / acc.n,
                                    (long long)acc.n));
    }
    synergy.AddRow(row);
  }
  std::printf("%s", synergy.Render().c_str());
  std::printf("\n(Correlation, not causality — §4's caveat; see the "
              "longitudinal example for the time-resolved view.)\n");
  return 0;
}
