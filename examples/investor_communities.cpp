// Investor-community analysis, end to end (paper §5): crawl the simulated
// web, merge AngelList + CrunchBase into the bipartite investor graph,
// detect communities with CoDA, score them with the shared-investment
// metrics, and export Figure-7-style SVG/DOT renderings of the strongest
// and weakest communities.
//
// Usage: investor_communities [--scale=0.05] [--communities=96]
//                             [--out=<dir for SVG/DOT artifacts>]

#include <cstdio>

#include "core/experiments.h"
#include "core/platform.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table.h"
#include "viz/render.h"

using namespace cfnet;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);

  core::ExploratoryPlatform::Options options;
  options.world.scale = flags.GetDouble("scale", 0.05);
  options.world.seed = static_cast<uint64_t>(flags.GetInt("seed", 20160626));
  options.crawl.num_workers = static_cast<int>(flags.GetInt("workers", 8));

  core::ExploratoryPlatform platform(options);
  std::printf("Crawling a scale-%.2f world...\n", options.world.scale);
  if (Status s = platform.CollectData(); !s.ok()) {
    std::fprintf(stderr, "crawl failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto inputs = platform.LoadInputs();
  if (!inputs.ok()) {
    std::fprintf(stderr, "load failed: %s\n", inputs.status().ToString().c_str());
    return 1;
  }

  community::CodaConfig coda;
  coda.num_communities = static_cast<int>(flags.GetInt("communities", 96));
  coda.max_iterations = 25;
  core::ExperimentSuite suite(platform.context(), *inputs, coda);

  const graph::BipartiteGraph& g = suite.investor_graph();
  const graph::BipartiteGraph& filtered = suite.filtered_graph();
  std::printf(
      "\nInvestor graph: %zu investors x %zu companies, %zu edges.\n"
      "After the >=4-investment cleaning step: %zu investors, %zu edges.\n",
      g.num_left(), g.num_right(), g.num_edges(), filtered.num_left(),
      filtered.num_edges());

  const auto& communities = suite.coda().investor_communities;
  std::printf("CoDA detected %zu overlapping communities (avg size %.1f).\n",
              communities.size(), communities.AverageSize());

  // Rank all sizeable communities by the shared-investment-size metric.
  struct Row {
    size_t index;
    size_t size;
    double mean_shared;
    double shared_pct;
  };
  std::vector<Row> rows;
  for (size_t ci = 0; ci < communities.communities.size(); ++ci) {
    const auto& members = communities.communities[ci];
    if (members.size() < 5) continue;
    rows.push_back({ci, members.size(),
                    core::MeanSharedInvestmentSize(filtered, members),
                    core::SharedInvestorCompanyPercent(filtered, members, 2)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.mean_shared > b.mean_shared; });

  AsciiTable table({"community", "investors", "mean shared investments",
                    "% companies w/ >=2 shared investors"});
  size_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= 10) break;
    table.AddRow({StrFormat("#%zu", row.index), std::to_string(row.size),
                  StrFormat("%.2f", row.mean_shared),
                  StrFormat("%.1f%%", row.shared_pct)});
  }
  std::printf("\nTop communities by herding strength:\n%s", table.Render().c_str());

  // Figure-7-style artifacts.
  core::Fig7Result fig7 = suite.RunFig7();
  const std::string out_dir = flags.GetString("out", ".");
  struct Artifact {
    const char* name;
    const std::string* content;
  } artifacts[] = {
      {"/strong_community.svg", &fig7.strong.svg},
      {"/strong_community.dot", &fig7.strong.dot},
      {"/weak_community.svg", &fig7.weak.svg},
      {"/weak_community.dot", &fig7.weak.dot},
  };
  for (const auto& a : artifacts) {
    std::string path = out_dir + a.name;
    Status s = viz::WriteTextFile(path, *a.content);
    if (s.ok()) {
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                   s.ToString().c_str());
    }
  }
  std::printf(
      "\nStrong community #%zu: mean shared %.2f, %.1f%% shared-investor "
      "companies.\nWeak community #%zu: mean shared %.3f, %.1f%%.\n",
      fig7.strong.community_index, fig7.strong.mean_shared,
      fig7.strong.shared_investor_pct, fig7.weak.community_index,
      fig7.weak.mean_shared, fig7.weak.shared_investor_pct);
  return 0;
}
