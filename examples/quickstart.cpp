// Quickstart: generate a small synthetic crowdfunding world, crawl it
// through the simulated AngelList/CrunchBase/Facebook/Twitter APIs, and run
// the paper's headline analyses.
//
// Usage: quickstart [--scale=0.02] [--workers=8] [--seed=20160626]

#include <cstdio>

#include "core/experiments.h"
#include "core/platform.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace cfnet;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);

  core::ExploratoryPlatform::Options options;
  options.world.scale = flags.GetDouble("scale", 0.02);
  options.world.seed = static_cast<uint64_t>(flags.GetInt("seed", 20160626));
  options.crawl.num_workers = static_cast<int>(flags.GetInt("workers", 8));

  std::printf("== cfnet quickstart ==\n");
  std::printf("Generating world (scale=%.3f): ~%lld companies, ~%lld users\n",
              options.world.scale,
              static_cast<long long>(options.world.NumCompanies()),
              static_cast<long long>(options.world.NumUsers()));

  core::ExploratoryPlatform platform(options);

  Status s = platform.CollectData();
  if (!s.ok()) {
    std::fprintf(stderr, "crawl failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto& report = platform.crawl_report();
  std::printf(
      "Crawl done: %lld companies, %lld users, %lld CrunchBase, "
      "%lld Facebook, %lld Twitter profiles\n",
      static_cast<long long>(report.companies_crawled),
      static_cast<long long>(report.users_crawled),
      static_cast<long long>(report.crunchbase_profiles),
      static_cast<long long>(report.facebook_profiles),
      static_cast<long long>(report.twitter_profiles));
  std::printf(
      "  %lld API requests over %d BFS rounds; simulated makespan %.1f min, "
      "wall %.2f s\n",
      static_cast<long long>(report.fetch.requests),
      static_cast<int>(report.bfs_rounds),
      static_cast<double>(report.makespan_micros) / 60e6, report.wall_seconds);

  auto inputs = platform.LoadInputs();
  if (!inputs.ok()) {
    std::fprintf(stderr, "load failed: %s\n", inputs.status().ToString().c_str());
    return 1;
  }

  community::CodaConfig coda;
  coda.num_communities = 96;
  coda.max_iterations = 25;
  core::ExperimentSuite suite(platform.context(), *inputs, coda);

  // --- social engagement table (Figure 6 headline rows). -----------------
  core::EngagementTable table = suite.RunEngagementTable();
  AsciiTable out({"Category", "Companies", "% of all", "% success"});
  for (const auto& row : table.rows) {
    out.AddRow({row.label, WithThousandsSeparators(row.num_companies),
                StrFormat("%.2f%%", row.pct_of_companies),
                StrFormat("%.1f%%", row.success_pct)});
  }
  std::printf("\nSocial engagement vs fundraising success:\n%s",
              out.Render().c_str());

  const auto* none = table.FindRow("No social media presence");
  const auto* fb = table.FindRow("Facebook");
  if (none != nullptr && fb != nullptr && none->success_pct > 0) {
    std::printf("Facebook presence multiplies success odds by %.0fx\n",
                fb->success_pct / none->success_pct);
  }

  // --- investor graph (Figure 3 / §5.1). ----------------------------------
  core::Fig3Result fig3 = suite.RunFig3();
  std::printf(
      "\nInvestor graph: %zu investors, %zu companies, %zu edges "
      "(%.1f investments/investor, %.1f investors/company)\n",
      fig3.num_investors, fig3.num_companies, fig3.num_edges,
      fig3.degrees.mean, fig3.avg_investors_per_company);
  std::printf("Median investments: %.0f; most active investor: %zu\n",
              fig3.degrees.median, fig3.degrees.max);

  // --- communities (Figures 4, 5). -----------------------------------------
  core::Fig4Result fig4 = suite.RunFig4(3, 100000);
  std::printf("\nCoDA: %zu communities (avg size %.1f) in %d iterations\n",
              fig4.num_communities, fig4.avg_community_size,
              fig4.coda_iterations);
  for (const auto& c : fig4.strongest) {
    std::printf("  strong community #%zu: %zu investors, mean shared "
                "investments %.2f (max %.0f)\n",
                c.community_index, c.size, c.mean_shared, c.max_shared);
  }
  core::Fig5Result fig5 = suite.RunFig5();
  std::printf(
      "Companies with >=2 shared investors: %.1f%% (CoDA communities) vs "
      "%.1f%% (random baseline)\n",
      fig5.mean_percent, fig5.random_mean_percent);

  std::printf("\nQuickstart complete.\n");
  return 0;
}
