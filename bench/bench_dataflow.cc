// MiniSpark (dataflow substrate) throughput: the operators the paper's
// analyses are built from, measured standalone with google-benchmark.

#include <numeric>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dataflow/dataset.h"

namespace cfnet::bench {
namespace {

using dataflow::Dataset;
using dataflow::ExecutionContext;

std::shared_ptr<ExecutionContext> Ctx() {
  static auto ctx = std::make_shared<ExecutionContext>();
  return ctx;
}

std::vector<int64_t> Numbers(size_t n) {
  std::vector<int64_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

void BM_Map(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> data = Numbers(n);
  for (auto _ : state) {
    auto out = Dataset<int64_t>::FromVector(Ctx(), data)
                   .Map([](const int64_t& x) { return x * 2 + 1; })
                   .Count();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Map)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_FilterChain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> data = Numbers(n);
  for (auto _ : state) {
    auto out = Dataset<int64_t>::FromVector(Ctx(), data)
                   .Filter([](const int64_t& x) { return x % 2 == 0; })
                   .Map([](const int64_t& x) { return x / 2; })
                   .Filter([](const int64_t& x) { return x % 3 == 0; })
                   .Count();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FilterChain)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_ReduceByKey(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::pair<int64_t, int64_t>> kvs;
  kvs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    kvs.emplace_back(static_cast<int64_t>(i % 10007), 1);
  }
  for (auto _ : state) {
    auto out = ReduceByKey(
                   Dataset<std::pair<int64_t, int64_t>>::FromVector(Ctx(), kvs),
                   [](int64_t a, int64_t b) { return a + b; })
                   .Count();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ReduceByKey)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_Join(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::pair<int64_t, int64_t>> left;
  std::vector<std::pair<int64_t, int64_t>> right;
  for (size_t i = 0; i < n; ++i) {
    left.emplace_back(static_cast<int64_t>(i), static_cast<int64_t>(i));
    if (i % 2 == 0) {
      right.emplace_back(static_cast<int64_t>(i), static_cast<int64_t>(-i));
    }
  }
  for (auto _ : state) {
    auto out =
        Join(Dataset<std::pair<int64_t, int64_t>>::FromVector(Ctx(), left),
             Dataset<std::pair<int64_t, int64_t>>::FromVector(Ctx(), right))
            .Count();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Join)->Arg(100000)->Arg(500000)->Unit(benchmark::kMillisecond);

void BM_Distinct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.push_back(static_cast<int64_t>(i % (n / 4)));
  }
  for (auto _ : state) {
    auto out = Dataset<int64_t>::FromVector(Ctx(), data).Distinct().Count();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Distinct)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_ScalingWithThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  auto ctx = std::make_shared<ExecutionContext>(threads);
  std::vector<int64_t> data = Numbers(2000000);
  for (auto _ : state) {
    auto out = Dataset<int64_t>::FromVector(ctx, data)
                   .Map([](const int64_t& x) {
                     // A mildly expensive kernel so threading matters.
                     int64_t acc = x;
                     for (int k = 0; k < 20; ++k) acc = acc * 6364136223846793005ll + 1;
                     return acc;
                   })
                   .Reduce([](int64_t a, int64_t b) { return a ^ b; }, 0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 2000000);
}
BENCHMARK(BM_ScalingWithThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  cfnet::bench::RunBenchmarks(argc, argv);
  return 0;
}
