// MiniSpark (dataflow substrate) throughput: the operators the paper's
// analyses are built from, measured standalone with google-benchmark, plus
// a fixed set of engine workloads (fused narrow chain, skewed aggregation,
// sort, repartition) whose results are written as machine-readable JSON for
// before/after comparison (--json=PATH, default BENCH_dataflow.json;
// --records=N sets the workload size).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dataflow/dataset.h"
#include "json/json.h"
#include "util/flags.h"

namespace cfnet::bench {
namespace {

using dataflow::Dataset;
using dataflow::ExecutionContext;

std::shared_ptr<ExecutionContext> Ctx() {
  static auto ctx = std::make_shared<ExecutionContext>();
  return ctx;
}

std::vector<int64_t> Numbers(size_t n) {
  std::vector<int64_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

void BM_Map(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> data = Numbers(n);
  for (auto _ : state) {
    auto out = Dataset<int64_t>::FromVector(Ctx(), data)
                   .Map([](const int64_t& x) { return x * 2 + 1; })
                   .Count();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Map)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_FilterChain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> data = Numbers(n);
  for (auto _ : state) {
    auto out = Dataset<int64_t>::FromVector(Ctx(), data)
                   .Filter([](const int64_t& x) { return x % 2 == 0; })
                   .Map([](const int64_t& x) { return x / 2; })
                   .Filter([](const int64_t& x) { return x % 3 == 0; })
                   .Count();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FilterChain)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_ReduceByKey(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::pair<int64_t, int64_t>> kvs;
  kvs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    kvs.emplace_back(static_cast<int64_t>(i % 10007), 1);
  }
  for (auto _ : state) {
    auto out = ReduceByKey(
                   Dataset<std::pair<int64_t, int64_t>>::FromVector(Ctx(), kvs),
                   [](int64_t a, int64_t b) { return a + b; })
                   .Count();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ReduceByKey)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_Join(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::pair<int64_t, int64_t>> left;
  std::vector<std::pair<int64_t, int64_t>> right;
  for (size_t i = 0; i < n; ++i) {
    left.emplace_back(static_cast<int64_t>(i), static_cast<int64_t>(i));
    if (i % 2 == 0) {
      right.emplace_back(static_cast<int64_t>(i), static_cast<int64_t>(-i));
    }
  }
  for (auto _ : state) {
    auto out =
        Join(Dataset<std::pair<int64_t, int64_t>>::FromVector(Ctx(), left),
             Dataset<std::pair<int64_t, int64_t>>::FromVector(Ctx(), right))
            .Count();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Join)->Arg(100000)->Arg(500000)->Unit(benchmark::kMillisecond);

void BM_Distinct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.push_back(static_cast<int64_t>(i % (n / 4)));
  }
  for (auto _ : state) {
    auto out = Dataset<int64_t>::FromVector(Ctx(), data).Distinct().Count();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Distinct)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_ScalingWithThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  auto ctx = std::make_shared<ExecutionContext>(threads);
  std::vector<int64_t> data = Numbers(2000000);
  for (auto _ : state) {
    auto out = Dataset<int64_t>::FromVector(ctx, data)
                   .Map([](const int64_t& x) {
                     // A mildly expensive kernel so threading matters.
                     int64_t acc = x;
                     for (int k = 0; k < 20; ++k) acc = acc * 6364136223846793005ll + 1;
                     return acc;
                   })
                   .Reduce([](int64_t a, int64_t b) { return a ^ b; }, 0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 2000000);
}
BENCHMARK(BM_ScalingWithThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- measured engine workloads (JSON output) ------------------------------

/// Times `fn` (one warmup + `reps` timed runs) and snapshots the engine
/// metric deltas of a single run.
struct Measured {
  double ms_per_rep = 0;
  uint64_t stages_run = 0;
  uint64_t fused_ops = 0;
  uint64_t morsels_run = 0;
  double stage_wall_ms = 0;
};

template <typename F>
Measured Measure(ExecutionContext& ctx, F&& fn, int reps) {
  fn();  // warmup (also materializes memoized sources)
  ctx.metrics().Reset();
  fn();
  Measured m;
  m.stages_run = ctx.metrics().stages_run.load();
  m.fused_ops = ctx.metrics().fused_ops.load();
  m.morsels_run = ctx.metrics().morsels_run.load();
  m.stage_wall_ms =
      static_cast<double>(ctx.metrics().stage_wall_ns.load()) / 1e6;
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) fn();
  auto t1 = std::chrono::steady_clock::now();
  m.ms_per_rep =
      std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
  return m;
}

/// Runs the fixed engine workloads and writes one JSON document. Sources are
/// materialized before timing so each rep measures the engine work (narrow
/// pipeline, shuffle, sort), not the cost of copying the input vector.
void RunMeasuredWorkloads(const cfnet::FlagParser& flags) {
  const size_t n = static_cast<size_t>(flags.GetInt("records", 2000000));
  const std::string path = flags.GetString("json", "BENCH_dataflow.json");
  const int reps = static_cast<int>(flags.GetInt("reps", 5));
  auto ctx = std::make_shared<ExecutionContext>();

  json::Json doc = json::Json::MakeObject();
  doc.Set("bench", "bench_dataflow");
  doc.Set("records", static_cast<int64_t>(n));
  doc.Set("parallelism", static_cast<int64_t>(ctx->parallelism()));
  doc.Set("morsel_size", static_cast<int64_t>(ctx->morsel_size()));
  json::Json workloads = json::Json::MakeArray();

  auto emit = [&workloads, n](const std::string& name, const Measured& m) {
    json::Json w = json::Json::MakeObject();
    w.Set("name", name);
    w.Set("ms_per_rep", m.ms_per_rep);
    w.Set("records_per_sec", m.ms_per_rep > 0
                                 ? static_cast<double>(n) / m.ms_per_rep * 1e3
                                 : 0.0);
    w.Set("stages_run", static_cast<int64_t>(m.stages_run));
    w.Set("fused_ops", static_cast<int64_t>(m.fused_ops));
    w.Set("morsels_run", static_cast<int64_t>(m.morsels_run));
    w.Set("stage_wall_ms", m.stage_wall_ms);
    workloads.Append(std::move(w));
    std::printf("%-22s %8.2f ms  %7.1f Mrec/s  (stages=%llu fused_ops=%llu "
                "morsels=%llu)\n",
                name.c_str(), m.ms_per_rep, n / m.ms_per_rep / 1e3,
                static_cast<unsigned long long>(m.stages_run),
                static_cast<unsigned long long>(m.fused_ops),
                static_cast<unsigned long long>(m.morsels_run));
  };

  Section("Measured engine workloads");

  {
    auto src = Dataset<int64_t>::FromVector(ctx, Numbers(n));
    src.Count();
    emit("map_filter_chain", Measure(*ctx, [&src]() {
      auto c = src.Map([](const int64_t& x) { return x * 3 + 1; })
                   .Filter([](const int64_t& x) { return x % 2 == 0; })
                   .Map([](const int64_t& x) { return x / 2; })
                   .Count();
      benchmark::DoNotOptimize(c);
    }, reps));
  }

  {
    // 90% of the records hit 100 hot keys: stresses shuffle skew handling.
    std::vector<std::pair<int64_t, int64_t>> kvs;
    kvs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      int64_t k = (i % 10 != 0) ? static_cast<int64_t>(i % 100)
                                : static_cast<int64_t>(1000 + i % 100000);
      kvs.emplace_back(k, 1);
    }
    auto src =
        Dataset<std::pair<int64_t, int64_t>>::FromVector(ctx, std::move(kvs));
    src.Count();
    emit("skewed_reduce_by_key", Measure(*ctx, [&src]() {
      auto c = ReduceByKey(src.Map([](const std::pair<int64_t, int64_t>& kv) {
                             return std::make_pair(kv.first, kv.second * 2);
                           }),
                           [](int64_t a, int64_t b) { return a + b; })
                   .Count();
      benchmark::DoNotOptimize(c);
    }, reps));
  }

  {
    std::vector<int64_t> shuffled(n);
    for (size_t i = 0; i < n; ++i) {
      shuffled[i] = static_cast<int64_t>((i * 2654435761u) % n);
    }
    auto src = Dataset<int64_t>::FromVector(ctx, std::move(shuffled));
    src.Count();
    emit("sort_by", Measure(*ctx, [&src]() {
      auto sorted = src.SortBy([](const int64_t& x) { return x; });
      benchmark::DoNotOptimize(sorted);
    }, reps));
  }

  {
    auto src = Dataset<int64_t>::FromVector(ctx, Numbers(n), 8);
    src.Count();
    emit("repartition", Measure(*ctx, [&src]() {
      auto c = src.Repartition(5).Count();
      benchmark::DoNotOptimize(c);
    }, reps));
  }

  doc.Set("workloads", std::move(workloads));
  WriteJsonDoc(path, doc);
}

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  cfnet::FlagParser flags(argc, argv);
  cfnet::bench::RunMeasuredWorkloads(flags);
  cfnet::bench::RunBenchmarks(argc, argv);
  return 0;
}
