// Reproduces the §3 dataset-collection statistics (companies/users/profiles
// gathered, role fractions) and evaluates crawl throughput: workers and
// Twitter-token sweeps over simulated makespan — the paper's claim that
// token sharding "tackles the rate limit issue effectively".

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "crawler/crawler.h"
#include "net/social_web.h"
#include "util/string_util.h"
#include "util/table.h"

namespace cfnet::bench {
namespace {

/// Runs a fresh crawl of a small world with the given worker/token counts;
/// returns the report.
crawler::CrawlReport SweepCrawl(double scale, int workers, int machines,
                                int apps_per_machine) {
  synth::WorldConfig wc;
  wc.scale = scale;
  wc.seed = 20160626;
  synth::World world = synth::World::Generate(wc);
  net::SocialWeb web(&world);
  dfs::MiniDfs dfs;
  crawler::CrawlConfig config;
  config.num_workers = workers;
  config.num_twitter_machines = machines;
  config.twitter_apps_per_machine = apps_per_machine;
  config.store_snapshots = false;
  crawler::Crawler crawler(&web, &dfs, config);
  Status s = crawler.Run();
  CFNET_CHECK(s.ok()) << s.ToString();
  return crawler.report();
}

void BM_FullCrawl(benchmark::State& state) {
  for (auto _ : state) {
    crawler::CrawlReport report =
        SweepCrawl(0.002, static_cast<int>(state.range(0)), 2, 5);
    benchmark::DoNotOptimize(report.fetch.requests);
    state.counters["requests"] =
        static_cast<double>(report.fetch.requests);
  }
}
BENCHMARK(BM_FullCrawl)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  using namespace cfnet;
  using namespace cfnet::bench;
  FlagParser flags(argc, argv);
  Testbed& bed = GetTestbed(flags);

  const auto& report = bed.platform->crawl_report();
  core::DatasetStatsResult stats = bed.suite->RunDatasetStats();
  const double scale = bed.scale;

  Section("§3 dataset statistics (scaled targets = paper x scale)");
  PrintComparison("AngelList companies",
                  StrFormat("%.0f", 744036 * scale),
                  WithThousandsSeparators(stats.companies));
  PrintComparison("AngelList users", StrFormat("%.0f", 1109441 * scale),
                  WithThousandsSeparators(stats.users));
  PrintComparison("CrunchBase profiles", StrFormat("%.0f", 10156 * scale),
                  WithThousandsSeparators(stats.crunchbase_profiles));
  PrintComparison("Facebook profiles", StrFormat("%.0f", 37761 * scale),
                  WithThousandsSeparators(stats.facebook_profiles));
  PrintComparison("Twitter profiles", StrFormat("%.0f", 70563 * scale),
                  WithThousandsSeparators(stats.twitter_profiles));
  PrintComparison("investors", "4.3%",
                  StrFormat("%.1f%%", stats.investor_pct));
  PrintComparison("founders", "18.3%", StrFormat("%.1f%%", stats.founder_pct));
  PrintComparison("prospective employees", "44.2%",
                  StrFormat("%.1f%%", stats.employee_pct));

  Section("crawl pipeline report");
  std::printf(
      "  %s API requests (%s retries, %s rate-limit waits, %s token "
      "rotations)\n",
      WithThousandsSeparators(report.fetch.requests).c_str(),
      WithThousandsSeparators(report.fetch.retries).c_str(),
      WithThousandsSeparators(report.fetch.rate_limit_waits).c_str(),
      WithThousandsSeparators(report.fetch.token_rotations).c_str());
  std::printf("  BFS rounds: %lld; CrunchBase matches: %lld by URL, %lld by "
              "unique-name search, %lld ambiguous skipped, %lld backlink "
              "mismatches rejected\n",
              static_cast<long long>(report.bfs_rounds),
              static_cast<long long>(report.crunchbase_matched_by_url),
              static_cast<long long>(report.crunchbase_matched_by_search),
              static_cast<long long>(report.crunchbase_ambiguous_skipped),
              static_cast<long long>(report.crunchbase_backlink_mismatches));
  std::printf("  simulated makespan: %.1f min; wall time: %.2f s; simulated "
              "throughput: %.1f req/s\n",
              static_cast<double>(report.makespan_micros) / 60e6,
              report.wall_seconds,
              report.makespan_micros > 0
                  ? 1e6 * static_cast<double>(report.fetch.requests) /
                        static_cast<double>(report.makespan_micros)
                  : 0.0);

  Section("worker sweep (simulated makespan, smaller world)");
  {
    AsciiTable table({"workers", "requests", "simulated makespan (min)",
                      "wall (s)", "speedup"});
    double base = 0;
    for (int workers : {1, 2, 4, 8, 16}) {
      crawler::CrawlReport r = SweepCrawl(0.01, workers, 2, 5);
      double mins = static_cast<double>(r.makespan_micros) / 60e6;
      if (workers == 1) base = mins;
      table.AddRow({std::to_string(workers),
                    WithThousandsSeparators(r.fetch.requests),
                    StrFormat("%.1f", mins), StrFormat("%.2f", r.wall_seconds),
                    StrFormat("%.1fx", base / mins)});
    }
    std::printf("%s", table.Render().c_str());
  }

  Section("Twitter token sweep (rate-limit handling, paper §3)");
  {
    AsciiTable table({"tokens", "rate-limit waits", "token rotations",
                      "simulated makespan (min)"});
    struct Setup {
      int machines;
      int apps;
    } setups[] = {{1, 1}, {1, 2}, {1, 5}, {2, 5}, {4, 5}};
    for (const auto& setup : setups) {
      crawler::CrawlReport r = SweepCrawl(0.01, 8, setup.machines, setup.apps);
      table.AddRow({std::to_string(setup.machines * setup.apps),
                    WithThousandsSeparators(r.fetch.rate_limit_waits),
                    WithThousandsSeparators(r.fetch.token_rotations),
                    StrFormat("%.1f",
                              static_cast<double>(r.makespan_micros) / 60e6)});
    }
    std::printf("%s", table.Render().c_str());
  }

  RunBenchmarks(argc, argv);
  return 0;
}
