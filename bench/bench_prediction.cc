// §7 prediction experiment: trains logistic success predictors on the
// crawled world, ablates feature groups to identify which statistics carry
// the signal (the paper's planned "feature selection ... to identify the
// graph statistics that are the most useful"), and times training.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/investor_graph.h"
#include "core/prediction.h"
#include "util/string_util.h"
#include "util/table.h"

namespace cfnet::bench {
namespace {

std::vector<core::LabeledExample>* g_examples = nullptr;

/// Zeroes a span of feature columns (ablation by column, keeping the
/// example count and split identical).
std::vector<core::LabeledExample> ZeroFeatures(
    const std::vector<core::LabeledExample>& examples,
    const std::vector<size_t>& columns) {
  std::vector<core::LabeledExample> out = examples;
  for (auto& ex : out) {
    for (size_t c : columns) ex.features[c] = 0;
  }
  return out;
}

void BM_TrainPredictor(benchmark::State& state) {
  core::TrainConfig config;
  config.epochs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::PredictionResult model =
        core::TrainSuccessPredictor(*g_examples, config);
    benchmark::DoNotOptimize(model.test_auc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g_examples->size()) *
                          state.range(0));
}
BENCHMARK(BM_TrainPredictor)->Arg(50)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_ComputeAuc(benchmark::State& state) {
  std::vector<std::pair<double, bool>> scored;
  for (size_t i = 0; i < 100000; ++i) {
    scored.emplace_back(static_cast<double>((i * 2654435761u) % 100000),
                        i % 71 == 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeAuc(scored));
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_ComputeAuc)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  using namespace cfnet;
  using namespace cfnet::bench;
  FlagParser flags(argc, argv);
  Testbed& bed = GetTestbed(flags);

  graph::BipartiteGraph investor_graph =
      core::BuildInvestorGraph(bed.platform->context(), *bed.inputs);
  auto examples = core::BuildSuccessFeatures(bed.platform->context(),
                                             *bed.inputs, investor_graph);
  g_examples = &examples;

  core::TrainConfig config;
  config.l1 = flags.GetDouble("l1", 0.002);

  Section("feature-group ablation (test AUC; §7 'which graph statistics "
          "are most useful')");
  struct Group {
    const char* name;
    std::vector<size_t> columns;
  } groups[] = {
      {"full model", {}},
      {"- social presence/video (1,2,3)", {1, 2, 3}},
      {"- engagement counts (4,5,6)", {4, 5, 6}},
      {"- investor-graph features (7,8,9,10)", {7, 8, 9, 10}},
      {"- AngelList followers (0)", {0}},
      {"only investor-graph features", {0, 1, 2, 3, 4, 5, 6, 11}},
  };
  AsciiTable table({"feature set", "test AUC", "top-decile lift",
                    "nonzero weights"});
  for (const auto& group : groups) {
    auto ablated = ZeroFeatures(examples, group.columns);
    core::PredictionResult model = core::TrainSuccessPredictor(ablated, config);
    table.AddRow({group.name, StrFormat("%.3f", model.test_auc),
                  StrFormat("%.1fx", model.top_decile_lift),
                  std::to_string(model.nonzero_weights)});
  }
  std::printf("%s", table.Render().c_str());

  core::PredictionResult full = core::TrainSuccessPredictor(examples, config);
  Section("full-model weights (standardized; L1-selected)");
  for (size_t k = 0; k < full.feature_names.size(); ++k) {
    std::printf("  %-34s %+.4f%s\n", full.feature_names[k].c_str(),
                full.weights[k],
                std::fabs(full.weights[k]) < 1e-9 ? "  (pruned)" : "");
  }

  RunBenchmarks(argc, argv);
  return 0;
}
