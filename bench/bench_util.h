#ifndef CFNET_BENCH_BENCH_UTIL_H_
#define CFNET_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/experiments.h"
#include "core/platform.h"
#include "json/json.h"
#include "util/flags.h"

namespace cfnet::bench {

/// A fully-collected pipeline (world -> crawl -> parsed snapshots) shared by
/// the figure benches. Constructed once per process.
struct Testbed {
  std::unique_ptr<core::ExploratoryPlatform> platform;
  std::unique_ptr<core::AnalysisInputs> inputs;
  std::unique_ptr<core::ExperimentSuite> suite;
  double scale = 0;
};

/// Builds (or returns the cached) testbed. The default scale keeps every
/// bench under a few seconds; pass --scale=1.0 for a paper-sized run.
Testbed& GetTestbed(const FlagParser& flags, double default_scale = 0.05,
                    int coda_communities = 96, int coda_iterations = 25);

/// Prints "<name>: paper=<paper> measured=<measured>" rows consistently.
void PrintComparison(const std::string& name, const std::string& paper,
                     const std::string& measured);

/// Splits argv into (ours, benchmark's): google-benchmark aborts on unknown
/// flags, so only --benchmark_* flags are forwarded.
std::vector<char*> BenchmarkArgs(int argc, char** argv);

/// Runs google-benchmark with the filtered args (call after registering
/// benchmarks).
void RunBenchmarks(int argc, char** argv);

/// Prints a section header.
void Section(const std::string& title);

/// The machine the bench ran on: cpu count, architecture, and the SIMD
/// backend the numeric kernels dispatched to. Injected into every
/// BENCH_*.json by WriteJsonDoc so results are comparable across hosts.
json::Json MachineInfoJson();

/// Writes `doc` pretty-printed to `path` (with a `machine` metadata object
/// attached) and prints the destination — the shared tail of every
/// BENCH_*.json emitter.
void WriteJsonDoc(const std::string& path, const json::Json& doc);

}  // namespace cfnet::bench

#endif  // CFNET_BENCH_BENCH_UTIL_H_
