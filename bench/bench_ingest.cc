// Snapshot ingest throughput: DOM parsing (json::Parse + FromJson) vs the
// streaming zero-copy decoder (JsonReader + Decode) vs the parallel sharded
// scan (ScanJsonLines) at several thread counts, plus the to_chars-based
// serialization path and the blocked columnar format (ColumnarWriter
// encode, ScanColumnBlocks at several thread counts, and a 64k/256k/1M
// block-rows sweep). MB/s is computed from each format's own on-disk bytes.
// Results are written as machine-readable JSON for before/after comparison
// (--json=PATH, default BENCH_ingest.json; --records=N and --shards=S set
// the workload size/layout).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/columnar_records.h"
#include "core/records.h"
#include "dfs/columnar.h"
#include "dfs/dfs.h"
#include "dfs/jsonl.h"
#include "json/json.h"
#include "json/reader.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cfnet::bench {
namespace {

using core::StartupRecord;

/// One synthetic startup snapshot line — field mix matching the crawler's
/// output (ids, urls, counters, the occasional escape, fields the decoder
/// skips) so the decode cost is representative.
json::Json MakeDoc(uint64_t i, Rng& rng) {
  json::Json doc = json::Json::MakeObject();
  doc.Set("id", static_cast<int64_t>(i + 1));
  doc.Set("name", "Startup \"" + std::to_string(i) + "\" Inc.\n");
  doc.Set("twitter_url",
          rng.NextDouble() < 0.6 ? "https://twitter.com/s" + std::to_string(i) : "");
  doc.Set("facebook_url",
          rng.NextDouble() < 0.5 ? "https://facebook.com/s" + std::to_string(i) : "");
  doc.Set("crunchbase_url",
          rng.NextDouble() < 0.4 ? "https://crunchbase.com/s" + std::to_string(i) : "");
  doc.Set("video_url", rng.NextDouble() < 0.2 ? "https://v/" + std::to_string(i) : "");
  doc.Set("fundraising", rng.NextDouble() < 0.3);
  doc.Set("follower_count", static_cast<int64_t>(rng.Next() % 100000));
  doc.Set("quality", static_cast<double>(rng.NextDouble() * 10.0));
  // Skipped by the decoder: exercises SkipValue on composites.
  json::Json markets = json::Json::MakeArray();
  markets.Append("b2b");
  markets.Append("saas");
  doc.Set("markets", markets);
  return doc;
}

struct Timing {
  double ms_per_rep = 0;
};

template <typename F>
Timing Time(F&& fn, int reps) {
  fn();  // warmup
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) fn();
  auto t1 = std::chrono::steady_clock::now();
  Timing t;
  t.ms_per_rep = std::chrono::duration<double, std::milli>(t1 - t0).count() /
                 static_cast<double>(reps);
  return t;
}

void RunIngestBench(const cfnet::FlagParser& flags) {
  const size_t n = static_cast<size_t>(flags.GetInt("records", 200000));
  const size_t shards = static_cast<size_t>(flags.GetInt("shards", 4));
  const std::string path = flags.GetString("json", "BENCH_ingest.json");
  const int reps = static_cast<int>(flags.GetInt("reps", 5));

  // Build the snapshot corpus once.
  Rng rng(20260806);
  std::vector<json::Json> docs;
  docs.reserve(n);
  for (size_t i = 0; i < n; ++i) docs.push_back(MakeDoc(i, rng));

  dfs::MiniDfs dfs;
  std::vector<std::string> paths;
  uint64_t total_bytes = 0;
  for (size_t s = 0; s < shards; ++s) {
    std::string shard_path = "/bench/startups/part-" + std::to_string(s);
    dfs::JsonLinesWriter writer(&dfs, shard_path);
    for (size_t i = s; i < n; i += shards) {
      CFNET_CHECK(writer.Write(docs[i]).ok());
    }
    CFNET_CHECK(writer.Flush().ok());
    paths.push_back(shard_path);
    total_bytes += *dfs.FileSize(shard_path);
  }
  const double json_mb = static_cast<double>(total_bytes) / 1e6;

  // The same records in the blocked columnar format (default 64k-row
  // blocks), written through the commit protocol like a real compaction.
  std::vector<StartupRecord> records;
  records.reserve(n);
  for (const json::Json& d : docs) records.push_back(StartupRecord::FromJson(d));
  auto write_columnar = [&](const std::string& col_path, size_t block_rows) {
    dfs::ColumnarWriteOptions copts;
    copts.block_rows = block_rows;
    dfs::ColumnarWriter<StartupRecord> writer(&dfs, col_path, copts);
    for (const StartupRecord& r : records) writer.Add(r);
    CFNET_CHECK(writer.Finish().ok());
    return *dfs.FileSize(col_path);
  };
  const std::string col_path = "/bench/startups-col/part-all.cfc";
  const uint64_t columnar_bytes = write_columnar(col_path, 64 * 1024);
  const double col_mb = static_cast<double>(columnar_bytes) / 1e6;

  json::Json out_doc = json::Json::MakeObject();
  out_doc.Set("bench", "bench_ingest");
  out_doc.Set("records", static_cast<int64_t>(n));
  out_doc.Set("shards", static_cast<int64_t>(shards));
  out_doc.Set("bytes", static_cast<int64_t>(total_bytes));
  out_doc.Set("columnar_bytes", static_cast<int64_t>(columnar_bytes));
  out_doc.Set("columnar_compression_ratio",
              columnar_bytes > 0
                  ? static_cast<double>(total_bytes) /
                        static_cast<double>(columnar_bytes)
                  : 0.0);
  out_doc.Set("hardware_threads",
              static_cast<int64_t>(ThreadPool::DefaultParallelism()));
  json::Json workloads = json::Json::MakeArray();

  // MB/s is against the format's own on-disk footprint, so JSON and
  // columnar workloads stay comparable on records/s but honest on bytes/s.
  auto emit = [&workloads, n](const std::string& name, const Timing& t,
                              double mb) {
    json::Json w = json::Json::MakeObject();
    w.Set("name", name);
    w.Set("ms_per_rep", t.ms_per_rep);
    w.Set("records_per_sec",
          t.ms_per_rep > 0 ? static_cast<double>(n) / t.ms_per_rep * 1e3 : 0.0);
    w.Set("mb_per_sec", t.ms_per_rep > 0 ? mb / t.ms_per_rep * 1e3 : 0.0);
    workloads.Append(std::move(w));
    std::printf("%-22s %9.2f ms  %8.2f MB/s  %9.1f krec/s\n", name.c_str(),
                t.ms_per_rep, mb / t.ms_per_rep * 1e3,
                static_cast<double>(n) / t.ms_per_rep);
    return t.ms_per_rep;
  };

  Section("Snapshot ingest throughput (" + std::to_string(n) + " records, " +
          std::to_string(shards) + " shards)");

  // Serialization: Json::AppendTo into a reused buffer — the JsonLinesWriter
  // hot path, minus the MiniDfs append (which rewrites whole files and would
  // swamp the measurement).
  std::string serialize_buf;
  emit("dump_serialize", Time([&]() {
    serialize_buf.clear();
    for (const json::Json& d : docs) {
      d.AppendTo(serialize_buf);
      serialize_buf += '\n';
    }
    benchmark::DoNotOptimize(serialize_buf.data());
  }, reps), json_mb);

  // Baseline ingest: DOM parse per line, then FromJson — the pre-streaming
  // LoadInputs path.
  const double dom_ms = emit("dom_parse", Time([&]() {
    int64_t sum = 0;
    for (const std::string& p : paths) {
      auto records = dfs::ReadJsonLines(dfs, p);
      CFNET_CHECK(records.ok());
      for (const json::Json& j : *records) {
        sum += StartupRecord::FromJson(j).follower_count;
      }
    }
    benchmark::DoNotOptimize(sum);
  }, reps), json_mb);

  auto scan_startups = [&](ThreadPool* pool) {
    dfs::ScanOptions options;
    options.pool = pool;
    auto decode = [](std::string_view line) -> Result<StartupRecord> {
      json::JsonReader reader(line);
      CFNET_ASSIGN_OR_RETURN(StartupRecord rec, StartupRecord::Decode(reader));
      CFNET_RETURN_IF_ERROR(reader.Finish());
      return rec;
    };
    auto parts = dfs::ScanJsonLines<StartupRecord>(dfs, paths, decode, options);
    CFNET_CHECK(parts.ok());
    int64_t sum = 0;
    for (const auto& part : *parts) {
      for (const StartupRecord& r : part) sum += r.follower_count;
    }
    benchmark::DoNotOptimize(sum);
  };

  // Streaming decoder, single-threaded: same records, no DOM allocation.
  const double stream_ms =
      emit("stream_decode", Time([&]() { scan_startups(nullptr); }, reps),
           json_mb);

  // Parallel scan at fixed thread counts.
  json::Json scaling = json::Json::MakeArray();
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool pool(threads);
    double ms = emit("scan_threads_" + std::to_string(threads),
                     Time([&]() { scan_startups(&pool); }, reps), json_mb);
    json::Json s = json::Json::MakeObject();
    s.Set("threads", static_cast<int64_t>(threads));
    s.Set("ms_per_rep", ms);
    s.Set("speedup_vs_1t", 0.0);  // filled below once 1t is known
    scaling.Append(std::move(s));
  }
  // Fill speedups relative to the single-thread scan.
  const double base_ms = scaling.at(0).Get("ms_per_rep").AsDouble();
  json::Json scaling_filled = json::Json::MakeArray();
  for (size_t i = 0; i < scaling.size(); ++i) {
    json::Json s = scaling.at(i);
    double ms = s.Get("ms_per_rep").AsDouble();
    s.Set("speedup_vs_1t", ms > 0 ? base_ms / ms : 0.0);
    scaling_filled.Append(std::move(s));
  }

  // Columnar block scan: same records, binary columns instead of JSON text.
  auto scan_columnar = [&](const std::string& path_arg, ThreadPool* pool) {
    dfs::ScanOptions options;
    options.pool = pool;
    auto parts =
        dfs::ScanColumnBlocks<StartupRecord>(dfs, {path_arg}, options);
    CFNET_CHECK(parts.ok());
    int64_t sum = 0;
    for (const auto& part : *parts) {
      for (const StartupRecord& r : part) sum += r.follower_count;
    }
    benchmark::DoNotOptimize(sum);
  };

  const double col_ms = emit(
      "columnar_scan",
      Time([&]() { scan_columnar(col_path, nullptr); }, reps), col_mb);
  json::Json col_scaling = json::Json::MakeArray();
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool pool(threads);
    double ms = emit("columnar_threads_" + std::to_string(threads),
                     Time([&]() { scan_columnar(col_path, &pool); }, reps),
                     col_mb);
    json::Json s = json::Json::MakeObject();
    s.Set("threads", static_cast<int64_t>(threads));
    s.Set("ms_per_rep", ms);
    col_scaling.Append(std::move(s));
  }

  // Block-rows sweep: frame/dictionary amortisation vs salvage/parallelism
  // grain. Each size is written to its own file so MB/s tracks its actual
  // footprint.
  json::Json sweep = json::Json::MakeArray();
  for (size_t block_rows :
       {size_t{64} * 1024, size_t{256} * 1024, size_t{1024} * 1024}) {
    const std::string sweep_path =
        "/bench/startups-col-sweep/rows-" + std::to_string(block_rows) + ".cfc";
    const uint64_t sweep_bytes = write_columnar(sweep_path, block_rows);
    const double sweep_mb = static_cast<double>(sweep_bytes) / 1e6;
    Timing t = Time([&]() { scan_columnar(sweep_path, nullptr); }, reps);
    json::Json s = json::Json::MakeObject();
    s.Set("block_rows", static_cast<int64_t>(block_rows));
    s.Set("bytes", static_cast<int64_t>(sweep_bytes));
    s.Set("ms_per_rep", t.ms_per_rep);
    s.Set("records_per_sec",
          t.ms_per_rep > 0 ? static_cast<double>(n) / t.ms_per_rep * 1e3 : 0.0);
    s.Set("mb_per_sec", t.ms_per_rep > 0 ? sweep_mb / t.ms_per_rep * 1e3 : 0.0);
    sweep.Append(std::move(s));
    std::printf("block_rows %-9zu %9.2f ms  %8.2f MB/s  %9lu bytes\n",
                block_rows, t.ms_per_rep, sweep_mb / t.ms_per_rep * 1e3,
                static_cast<unsigned long>(sweep_bytes));
  }

  out_doc.Set("workloads", std::move(workloads));
  out_doc.Set("scan_scaling", std::move(scaling_filled));
  out_doc.Set("columnar_scaling", std::move(col_scaling));
  out_doc.Set("block_rows_sweep", std::move(sweep));
  out_doc.Set("stream_vs_dom_speedup",
              stream_ms > 0 ? dom_ms / stream_ms : 0.0);
  out_doc.Set("columnar_vs_stream_speedup",
              col_ms > 0 ? stream_ms / col_ms : 0.0);
  std::printf("stream_decode speedup vs dom_parse: %.2fx\n",
              stream_ms > 0 ? dom_ms / stream_ms : 0.0);
  std::printf("columnar_scan speedup vs stream_decode: %.2fx\n",
              col_ms > 0 ? stream_ms / col_ms : 0.0);

  WriteJsonDoc(path, out_doc);
}

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  cfnet::FlagParser flags(argc, argv);
  cfnet::bench::RunIngestBench(flags);
  return 0;
}
