// Reproduces Figure 3 (CDF of investments per investor) and the §5.1
// investor-graph statistics: graph dimensions, average degrees, and the
// out-degree concentration rows, against the paper's numbers. Benchmarks
// the AngelList+CrunchBase merge and graph construction.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/investor_graph.h"
#include "util/string_util.h"
#include "util/table.h"

namespace cfnet::bench {
namespace {

Testbed* g_bed = nullptr;

void BM_BuildInvestorGraph(benchmark::State& state) {
  for (auto _ : state) {
    graph::BipartiteGraph g =
        core::BuildInvestorGraph(g_bed->platform->context(), *g_bed->inputs);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_BuildInvestorGraph)->Unit(benchmark::kMillisecond);

void BM_FilterMinDegree(benchmark::State& state) {
  const graph::BipartiteGraph& g = g_bed->suite->investor_graph();
  for (auto _ : state) {
    graph::BipartiteGraph f = g.FilterLeftByMinDegree(4);
    benchmark::DoNotOptimize(f.num_edges());
  }
}
BENCHMARK(BM_FilterMinDegree)->Unit(benchmark::kMillisecond);

void BM_DegreeSummary(benchmark::State& state) {
  const graph::BipartiteGraph& g = g_bed->suite->investor_graph();
  for (auto _ : state) {
    graph::DegreeSummary s = SummarizeOutDegrees(g);
    benchmark::DoNotOptimize(s.mean);
  }
}
BENCHMARK(BM_DegreeSummary)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  using namespace cfnet;
  using namespace cfnet::bench;
  FlagParser flags(argc, argv);
  Testbed& bed = GetTestbed(flags);
  g_bed = &bed;

  core::Fig3Result fig3 = bed.suite->RunFig3();
  const double scale = bed.scale;

  Section("§5.1 investor bipartite graph (AngelList + CrunchBase merge)");
  PrintComparison("investor nodes", StrFormat("%.0f (46,966 x scale)", 46966 * scale),
                  WithThousandsSeparators(static_cast<int64_t>(fig3.num_investors)));
  PrintComparison("company nodes", StrFormat("%.0f (59,953 x scale)", 59953 * scale),
                  WithThousandsSeparators(static_cast<int64_t>(fig3.num_companies)));
  PrintComparison("investment edges", StrFormat("%.0f (158,199 x scale)", 158199 * scale),
                  WithThousandsSeparators(static_cast<int64_t>(fig3.num_edges)));
  PrintComparison("avg investors per company", "2.6",
                  StrFormat("%.2f", fig3.avg_investors_per_company));
  PrintComparison("avg investments per investor", "3.3",
                  StrFormat("%.2f", fig3.degrees.mean));
  PrintComparison("median investments per investor", "1",
                  StrFormat("%.0f", fig3.degrees.median));
  PrintComparison("max investments (most active investor)", "~1000 (full scale)",
                  std::to_string(fig3.degrees.max));
  PrintComparison("avg companies followed per investor", "247",
                  StrFormat("%.1f", fig3.mean_investor_follows));
  PrintComparison(
      "edge sources (AngelList / CrunchBase / merged)", "(merge required)",
      StrFormat("%zu / %zu / %zu", fig3.provenance.angellist_edges,
                fig3.provenance.crunchbase_edges,
                fig3.provenance.merged_unique_edges));

  Section("out-degree concentration (paper: >=3 -> 30%/75%, >=4 -> "
          "22.2%/68.3%, >=5 -> 17.0%/62.0%)");
  constexpr double kPaperNodePct[] = {30.0, 22.2, 17.0};
  constexpr double kPaperEdgePct[] = {75.0, 68.3, 62.0};
  AsciiTable table({"out-degree >= k", "% investors", "paper", "% edges",
                    "paper"});
  for (size_t i = 0; i < fig3.degrees.concentration.size(); ++i) {
    const auto& c = fig3.degrees.concentration[i];
    table.AddRow({StrFormat("k = %zu", c.k),
                  StrFormat("%.1f%%", 100 * c.node_fraction),
                  StrFormat("%.1f%%", kPaperNodePct[i]),
                  StrFormat("%.1f%%", 100 * c.edge_fraction),
                  StrFormat("%.1f%%", kPaperEdgePct[i])});
  }
  std::printf("%s", table.Render().c_str());

  Section("Figure 3: CDF of investments per investor");
  std::printf("  x (investments)  F(x)\n");
  for (const auto& point : fig3.investment_cdf) {
    std::printf("  %15.0f  %.4f\n", point.x, point.p);
  }

  RunBenchmarks(argc, argv);
  return 0;
}
