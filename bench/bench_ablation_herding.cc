// Ablation: how the paper's two community-strength metrics respond to the
// planted co-investment strength. The generator sizes each community's
// shared portfolio to hit a target mean pairwise shared-investment size;
// sweeping that target and re-measuring validates that the metrics track
// the behaviour they were designed to quantify (DESIGN.md ablation).
// (Herding intensity alone is deliberately compensated by portfolio
// sizing, so the target is the true strength knob.)

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/community_metrics.h"
#include "graph/bipartite_graph.h"
#include "synth/world.h"
#include "util/string_util.h"
#include "util/table.h"

namespace cfnet::bench {
namespace {

/// Ground-truth bipartite graph straight from the world (no crawl needed
/// for this ablation; the pipeline equivalence is covered by tests).
graph::BipartiteGraph TruthGraph(const synth::World& world) {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (const auto& u : world.users()) {
    for (synth::CompanyId c : u.investments) edges.emplace_back(u.id, c);
  }
  return graph::BipartiteGraph::FromEdges(edges);
}

/// Metrics of the designated strongest planted community (community 0,
/// which is sized directly from `strongest_shared_target`).
struct StrengthPoint {
  double target = 0;
  double mean_shared = 0;
  double shared_pct = 0;
  size_t members = 0;
};

StrengthPoint MeasureAtTarget(double target, uint64_t seed) {
  synth::WorldConfig config;
  config.scale = 0.05;
  config.seed = seed;
  config.strongest_shared_target = target;
  synth::World world = synth::World::Generate(config);
  graph::BipartiteGraph g = TruthGraph(world);

  StrengthPoint point;
  point.target = target;
  const auto& comm = world.communities()[0];
  std::vector<uint32_t> members;
  for (synth::UserId m : comm.members) {
    uint32_t idx = g.LeftIndexOf(m);
    if (idx != graph::BipartiteGraph::kInvalidIndex) members.push_back(idx);
  }
  point.members = members.size();
  if (members.size() >= 2) {
    point.mean_shared = core::MeanSharedInvestmentSize(g, members, 20000);
    point.shared_pct = core::SharedInvestorCompanyPercent(g, members, 2);
  }
  return point;
}

void BM_WorldGeneration(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1000.0;
  synth::WorldConfig config;
  config.scale = scale;
  for (auto _ : state) {
    synth::World world = synth::World::Generate(config);
    benchmark::DoNotOptimize(world.companies().size());
  }
  state.SetLabel(StrFormat("scale=%.3f", scale));
}
BENCHMARK(BM_WorldGeneration)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  using namespace cfnet;
  using namespace cfnet::bench;
  FlagParser flags(argc, argv);

  Section("ablation: metric response to planted co-investment strength");
  std::printf("(scale 0.05 worlds; community 0 planted at each target; the\n"
              " community-wide planted mean runs ~target/2 because the\n"
              " generator budgets for CoDA's tighter detected cores)\n");
  AsciiTable table({"planted target", "measured mean shared size",
                    "% companies w/ >=2 shared investors", "members"});
  double prev_shared = -1;
  bool monotone = true;
  for (double target : {0.1, 0.3, 0.6, 1.0, 1.5, 2.1, 3.0}) {
    // Average over seeds: the strongest community has only O(10) members,
    // so a single draw of pairwise intersections is noisy.
    StrengthPoint avg;
    avg.target = target;
    constexpr int kSeeds = 4;
    for (int seed = 0; seed < kSeeds; ++seed) {
      StrengthPoint p = MeasureAtTarget(target, 77 + static_cast<uint64_t>(seed));
      avg.mean_shared += p.mean_shared / kSeeds;
      avg.shared_pct += p.shared_pct / kSeeds;
      avg.members += p.members / kSeeds;
    }
    table.AddRow({StrFormat("%.2f", avg.target),
                  StrFormat("%.3f", avg.mean_shared),
                  StrFormat("%.1f%%", avg.shared_pct),
                  std::to_string(avg.members)});
    if (avg.mean_shared < prev_shared * 0.9) monotone = false;  // 10% noise band
    prev_shared = avg.mean_shared;
  }
  std::printf("%s", table.Render().c_str());
  std::printf("mean shared size tracks the planted target (within a 10%% "
              "noise band): %s\n",
              monotone ? "yes" : "NO (investigate)");

  RunBenchmarks(argc, argv);
  return 0;
}
