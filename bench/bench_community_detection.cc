// Community-detection comparison: CoDA (the paper's choice) against the
// Louvain, label-propagation, bipartite-SBM and random baselines, scored
// with the paper's strength metrics. Also times each detector.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "community/coda.h"
#include "community/compare.h"
#include "community/model_selection.h"
#include "community/quality.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/random_baseline.h"
#include "community/sbm.h"
#include "core/community_metrics.h"
#include "graph/weighted_graph.h"
#include "util/string_util.h"
#include "util/table.h"

namespace cfnet::bench {
namespace {

Testbed* g_bed = nullptr;

struct DetectorScore {
  std::string name;
  size_t communities = 0;
  double avg_size = 0;
  double mean_shared = 0;        // weighted by community, avg pairwise
  double shared_investor_pct = 0;  // Fig 5 metric, K=2
  double conductance = 1.0;        // mean, on the co-investment projection
  double planted_f1 = 0;           // pairwise F1 vs the planted ground truth
  double seconds = 0;
};

const graph::WeightedGraph* g_projection = nullptr;
const community::CommunitySet* g_planted = nullptr;

/// Ground-truth planted communities, mapped onto the filtered graph's
/// investor indices — the recovery target only a synthetic world can offer.
community::CommunitySet PlantedTruth(const synth::World& world,
                                     const graph::BipartiteGraph& g) {
  community::CommunitySet truth;
  truth.num_nodes = g.num_left();
  for (const auto& comm : world.communities()) {
    std::vector<uint32_t> members;
    for (synth::UserId m : comm.members) {
      uint32_t idx = g.LeftIndexOf(m);
      if (idx != graph::BipartiteGraph::kInvalidIndex) members.push_back(idx);
    }
    std::sort(members.begin(), members.end());
    if (members.size() >= 2) truth.communities.push_back(std::move(members));
  }
  return truth;
}

DetectorScore Score(const std::string& name,
                    const community::CommunitySet& set,
                    const graph::BipartiteGraph& g, double seconds) {
  DetectorScore score;
  score.name = name;
  score.communities = set.communities.size();
  score.avg_size = set.AverageSize();
  double shared_sum = 0;
  size_t counted = 0;
  for (const auto& members : set.communities) {
    if (members.size() < 2) continue;
    shared_sum += core::MeanSharedInvestmentSize(g, members, 20000);
    ++counted;
  }
  score.mean_shared = counted == 0 ? 0 : shared_sum / static_cast<double>(counted);
  score.shared_investor_pct = core::MeanSharedInvestorCompanyPercent(g, set, 2);
  if (g_projection != nullptr) {
    score.conductance = community::MeanConductance(*g_projection, set);
  }
  if (g_planted != nullptr) {
    score.planted_f1 = community::ComparePairwise(set, *g_planted).f1;
  }
  score.seconds = seconds;
  return score;
}

template <typename F>
DetectorScore TimeDetector(const std::string& name,
                           const graph::BipartiteGraph& g, F run) {
  auto start = std::chrono::steady_clock::now();
  community::CommunitySet set = run();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return Score(name, set, g, seconds);
}

void BM_Coda(benchmark::State& state) {
  const graph::BipartiteGraph& g = g_bed->suite->filtered_graph();
  community::CodaConfig config;
  config.num_communities = 96;
  config.max_iterations = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(community::Coda(config).Fit(g).iterations);
  }
}
BENCHMARK(BM_Coda)->Unit(benchmark::kMillisecond);

void BM_Louvain(benchmark::State& state) {
  graph::WeightedGraph projection =
      graph::WeightedGraph::ProjectLeft(g_bed->suite->filtered_graph());
  for (auto _ : state) {
    benchmark::DoNotOptimize(community::RunLouvain(projection).modularity);
  }
}
BENCHMARK(BM_Louvain)->Unit(benchmark::kMillisecond);

void BM_LabelPropagation(benchmark::State& state) {
  graph::WeightedGraph projection =
      graph::WeightedGraph::ProjectLeft(g_bed->suite->filtered_graph());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        community::RunLabelPropagation(projection).iterations);
  }
}
BENCHMARK(BM_LabelPropagation)->Unit(benchmark::kMillisecond);

void BM_Sbm(benchmark::State& state) {
  const graph::BipartiteGraph& g = g_bed->suite->filtered_graph();
  community::SbmConfig config;
  config.num_investor_blocks = 32;
  config.num_company_blocks = 32;
  config.max_sweeps = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(community::RunSbm(g, config).sweeps);
  }
}
BENCHMARK(BM_Sbm)->Unit(benchmark::kMillisecond);

void BM_ProjectWeightedGraph(benchmark::State& state) {
  const graph::BipartiteGraph& g = g_bed->suite->filtered_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::WeightedGraph::ProjectLeft(g).num_edges());
  }
}
BENCHMARK(BM_ProjectWeightedGraph)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  using namespace cfnet;
  using namespace cfnet::bench;
  FlagParser flags(argc, argv);
  Testbed& bed = GetTestbed(flags);
  g_bed = &bed;

  const graph::BipartiteGraph& g = bed.suite->filtered_graph();
  graph::WeightedGraph projection = graph::WeightedGraph::ProjectLeft(g);
  g_projection = &projection;
  community::CommunitySet planted = PlantedTruth(bed.platform->world(), g);
  g_planted = &planted;
  std::printf("planted ground truth on the filtered graph: %zu communities, "
              "avg size %.1f\n",
              planted.communities.size(), planted.AverageSize());
  std::printf("filtered investor graph (>=4 investments): %zu investors, %zu "
              "companies, %zu edges; projection: %zu co-investment edges\n",
              g.num_left(), g.num_right(), g.num_edges(),
              projection.num_edges());

  std::vector<DetectorScore> scores;
  scores.push_back(TimeDetector("CoDA (paper)", g, [&]() {
    community::CodaConfig config;
    config.num_communities = 96;
    config.max_iterations = 25;
    return community::Coda(config).Fit(g).investor_communities;
  }));
  scores.push_back(TimeDetector("Louvain (projection)", g, [&]() {
    return community::RunLouvain(projection).communities;
  }));
  scores.push_back(TimeDetector("Label propagation (projection)", g, [&]() {
    return community::RunLabelPropagation(projection).communities;
  }));
  scores.push_back(TimeDetector("Bipartite SBM (ICM, §7)", g, [&]() {
    community::SbmConfig config;
    config.num_investor_blocks = 32;
    config.num_company_blocks = 32;
    return community::RunSbm(g, config).investor_communities;
  }));
  scores.push_back(TimeDetector("Random baseline", g, [&]() {
    return community::RandomCommunities(g.num_left(), 96, 17);
  }));

  Section("detector comparison on the paper's strength metrics");
  AsciiTable table({"detector", "communities", "avg size", "mean shared size",
                    "% companies w/ >=2 shared investors", "conductance",
                    "planted F1", "seconds"});
  for (const auto& s : scores) {
    table.AddRow({s.name, std::to_string(s.communities),
                  StrFormat("%.1f", s.avg_size),
                  StrFormat("%.3f", s.mean_shared),
                  StrFormat("%.1f%%", s.shared_investor_pct),
                  StrFormat("%.3f", s.conductance),
                  StrFormat("%.3f", s.planted_f1),
                  StrFormat("%.3f", s.seconds)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(paper: CoDA communities average 23.1%% on the shared-"
              "investor metric vs 5.8%% for randomized communities)\n");

  Section("CoDA model selection by held-out likelihood (extension; the "
          "paper fixes C via SNAP defaults)");
  {
    community::ModelSelectionConfig ms;
    ms.coda.max_iterations = 15;
    community::ModelSelectionResult selection = community::SelectCodaCommunities(
        g, {8, 24, 48, 96, 160}, ms);
    AsciiTable ms_table({"candidate C", "held-out log-likelihood / pair",
                         "detected communities"});
    for (const auto& cand : selection.scores) {
      ms_table.AddRow({std::to_string(cand.num_communities),
                       StrFormat("%.5f", cand.heldout_log_likelihood),
                       std::to_string(cand.detected_communities)});
    }
    std::printf("%s", ms_table.Render().c_str());
    std::printf("selected C = %d\n", selection.best_num_communities);
  }

  RunBenchmarks(argc, argv);
  return 0;
}
