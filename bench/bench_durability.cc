// Durable-storage overhead: what the atomic commit protocol (write-temp ->
// CRC footer -> read-back verify -> rename) costs over raw writes, and what
// footer verification costs on the snapshot scan path. The scan-side number
// is the one the durability contract bounds: committed snapshots must scan
// within ~10% of the raw BENCH_ingest throughput, since every analysis load
// now verifies footers. Results go to --json=PATH (default
// BENCH_durability.json); --records=N, --shards=S and --reps=R size the run.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/records.h"
#include "dfs/commit.h"
#include "dfs/dfs.h"
#include "dfs/jsonl.h"
#include "json/json.h"
#include "json/reader.h"
#include "util/crc32.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cfnet::bench {
namespace {

using core::StartupRecord;

/// Same synthetic startup line mix as bench_ingest, so the scan-side
/// overhead here is directly comparable to BENCH_ingest.json numbers.
json::Json MakeDoc(uint64_t i, Rng& rng) {
  json::Json doc = json::Json::MakeObject();
  doc.Set("id", static_cast<int64_t>(i + 1));
  doc.Set("name", "Startup \"" + std::to_string(i) + "\" Inc.\n");
  doc.Set("twitter_url",
          rng.NextDouble() < 0.6 ? "https://twitter.com/s" + std::to_string(i) : "");
  doc.Set("facebook_url",
          rng.NextDouble() < 0.5 ? "https://facebook.com/s" + std::to_string(i) : "");
  doc.Set("crunchbase_url",
          rng.NextDouble() < 0.4 ? "https://crunchbase.com/s" + std::to_string(i) : "");
  doc.Set("video_url", rng.NextDouble() < 0.2 ? "https://v/" + std::to_string(i) : "");
  doc.Set("fundraising", rng.NextDouble() < 0.3);
  doc.Set("follower_count", static_cast<int64_t>(rng.Next() % 100000));
  doc.Set("quality", static_cast<double>(rng.NextDouble() * 10.0));
  json::Json markets = json::Json::MakeArray();
  markets.Append("b2b");
  markets.Append("saas");
  doc.Set("markets", markets);
  return doc;
}

struct Timing {
  double ms_per_rep = 0;
};

template <typename F>
Timing Time(F&& fn, int reps) {
  fn();  // warmup
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) fn();
  auto t1 = std::chrono::steady_clock::now();
  Timing t;
  t.ms_per_rep = std::chrono::duration<double, std::milli>(t1 - t0).count() /
                 static_cast<double>(reps);
  return t;
}

void RunDurabilityBench(const cfnet::FlagParser& flags) {
  const size_t n = static_cast<size_t>(flags.GetInt("records", 200000));
  const size_t shards = static_cast<size_t>(flags.GetInt("shards", 4));
  const std::string path = flags.GetString("json", "BENCH_durability.json");
  const int reps = static_cast<int>(flags.GetInt("reps", 5));

  Rng rng(20260806);
  std::vector<json::Json> docs;
  docs.reserve(n);
  for (size_t i = 0; i < n; ++i) docs.push_back(MakeDoc(i, rng));

  json::Json out_doc = json::Json::MakeObject();
  out_doc.Set("bench", "bench_durability");
  out_doc.Set("records", static_cast<int64_t>(n));
  out_doc.Set("shards", static_cast<int64_t>(shards));
  json::Json workloads = json::Json::MakeArray();

  double corpus_mb = 0;  // set once the first writer pass sizes the corpus
  auto emit = [&workloads, &corpus_mb, n](const std::string& name,
                                          const Timing& t) {
    json::Json w = json::Json::MakeObject();
    w.Set("name", name);
    w.Set("ms_per_rep", t.ms_per_rep);
    w.Set("records_per_sec",
          t.ms_per_rep > 0 ? static_cast<double>(n) / t.ms_per_rep * 1e3 : 0.0);
    w.Set("mb_per_sec",
          t.ms_per_rep > 0 ? corpus_mb / t.ms_per_rep * 1e3 : 0.0);
    workloads.Append(std::move(w));
    std::printf("%-22s %9.2f ms  %8.2f MB/s  %7.1f krec/s\n", name.c_str(),
                t.ms_per_rep, corpus_mb / t.ms_per_rep * 1e3,
                static_cast<double>(n) / t.ms_per_rep);
    return t.ms_per_rep;
  };

  Section("Writer path: raw appends vs atomic commits (" + std::to_string(n) +
          " records, " + std::to_string(shards) + " shards)");

  // One full snapshot-writer pass: every record through JsonLinesWriter into
  // a fresh DFS, `durable` toggling raw Append vs the commit protocol.
  auto write_pass = [&](bool durable, dfs::MiniDfs* keep,
                        std::vector<std::string>* keep_paths) {
    dfs::MiniDfs local;
    dfs::MiniDfs* target = keep != nullptr ? keep : &local;
    for (size_t s = 0; s < shards; ++s) {
      std::string shard_path = "/bench/startups/part-" + std::to_string(s);
      dfs::JsonLinesWriter writer(target, shard_path, 1 << 20, durable);
      for (size_t i = s; i < n; i += shards) {
        CFNET_CHECK(writer.Write(docs[i]).ok());
      }
      CFNET_CHECK(writer.Flush().ok());
      if (keep_paths != nullptr) keep_paths->push_back(shard_path);
    }
  };

  // Size the corpus (and keep both variants for the scan-side comparison).
  dfs::MiniDfs raw_dfs;
  std::vector<std::string> raw_paths;
  write_pass(/*durable=*/false, &raw_dfs, &raw_paths);
  uint64_t total_bytes = 0;
  for (const std::string& p : raw_paths) total_bytes += *raw_dfs.FileSize(p);
  corpus_mb = static_cast<double>(total_bytes) / 1e6;
  out_doc.Set("bytes", static_cast<int64_t>(total_bytes));

  dfs::MiniDfs committed_dfs;
  std::vector<std::string> committed_paths;
  write_pass(/*durable=*/true, &committed_dfs, &committed_paths);

  const double raw_write_ms = emit(
      "write_raw_append",
      Time([&]() { write_pass(false, nullptr, nullptr); }, reps));
  const double commit_write_ms = emit(
      "write_commit",
      Time([&]() { write_pass(true, nullptr, nullptr); }, reps));

  // Commit primitives on one whole-shard payload: where the protocol's cost
  // comes from (extra read-back verify vs the rename being free).
  const std::string payload = *committed_dfs.ReadFile(committed_paths[0]);
  {
    dfs::MiniDfs d;
    emit("primitive_writefile", Time([&]() {
      CFNET_CHECK(d.WriteFile("/p", payload).ok());
    }, reps));
    dfs::CommitOptions no_verify;
    no_verify.verify_after_write = false;
    emit("primitive_commit_nv", Time([&]() {
      CFNET_CHECK(dfs::CommitFile(&d, "/p", payload, no_verify).ok());
    }, reps));
    emit("primitive_commit", Time([&]() {
      CFNET_CHECK(dfs::CommitFile(&d, "/p", payload).ok());
    }, reps));
  }

  Section("Scan path: footer-verified vs raw snapshots");

  auto scan = [&](const dfs::MiniDfs& d, const std::vector<std::string>& paths_,
                  ThreadPool* pool) {
    dfs::ScanOptions options;
    options.pool = pool;
    auto decode = [](std::string_view line) -> Result<StartupRecord> {
      json::JsonReader reader(line);
      CFNET_ASSIGN_OR_RETURN(StartupRecord rec, StartupRecord::Decode(reader));
      CFNET_RETURN_IF_ERROR(reader.Finish());
      return rec;
    };
    auto parts = dfs::ScanJsonLines<StartupRecord>(d, paths_, decode, options);
    CFNET_CHECK(parts.ok());
    int64_t sum = 0;
    for (const auto& part : *parts) {
      for (const StartupRecord& r : part) sum += r.follower_count;
    }
    benchmark::DoNotOptimize(sum);
  };

  ThreadPool pool(4);
  const double scan_raw_ms = emit(
      "scan_raw", Time([&]() { scan(raw_dfs, raw_paths, &pool); }, reps));
  const double scan_verified_ms = emit(
      "scan_footer_verified",
      Time([&]() { scan(committed_dfs, committed_paths, &pool); }, reps));

  const double scan_overhead_pct =
      scan_raw_ms > 0 ? (scan_verified_ms - scan_raw_ms) / scan_raw_ms * 100.0
                      : 0.0;
  const double write_overhead_pct =
      raw_write_ms > 0
          ? (commit_write_ms - raw_write_ms) / raw_write_ms * 100.0
          : 0.0;
  Section("CRC32 kernels: hardware folding vs table fallback");

  // One contiguous buffer the size of the corpus, so these MB/s numbers are
  // the checksum ceiling for the footer generation/verification above. The
  // dispatch path picks PCLMUL/ARMv8 folding when the CPU has it; the
  // fallback is the slice-by-8 table kernel both paths must match bit for
  // bit (columnar_test pins that).
  std::string crc_buf;
  for (const std::string& p : raw_paths) crc_buf += *raw_dfs.ReadFile(p);
  uint32_t crc_sink = 0;
  const double crc_hw_ms = emit("crc32_dispatch", Time([&]() {
    crc_sink ^= Crc32Update(0, crc_buf);
    benchmark::DoNotOptimize(crc_sink);
  }, reps));
  const double crc_table_ms = emit("crc32_table", Time([&]() {
    crc_sink ^= Crc32FallbackUpdate(0, crc_buf);
    benchmark::DoNotOptimize(crc_sink);
  }, reps));
  const double crc_speedup = crc_hw_ms > 0 ? crc_table_ms / crc_hw_ms : 0.0;

  out_doc.Set("workloads", std::move(workloads));
  out_doc.Set("crc32_hardware_enabled", Crc32HardwareEnabled());
  out_doc.Set("crc32_hw_vs_table_speedup", crc_speedup);
  out_doc.Set("scan_footer_overhead_pct", scan_overhead_pct);
  out_doc.Set("write_commit_overhead_pct", write_overhead_pct);
  std::printf("footer verification scan overhead: %+.1f%% (budget <10%%)\n",
              scan_overhead_pct);
  std::printf("commit protocol writer overhead:   %+.1f%%\n",
              write_overhead_pct);
  std::printf("crc32 hardware path: %s, %.2fx vs table\n",
              Crc32HardwareEnabled() ? "enabled" : "disabled", crc_speedup);

  WriteJsonDoc(path, out_doc);
}

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  cfnet::FlagParser flags(argc, argv);
  cfnet::bench::RunDurabilityBench(flags);
  return 0;
}
