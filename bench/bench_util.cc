#include "bench/bench_util.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include <benchmark/benchmark.h>

#include "util/logging.h"
#include "util/simd.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace cfnet::bench {

Testbed& GetTestbed(const FlagParser& flags, double default_scale,
                    int coda_communities, int coda_iterations) {
  static Testbed* bed = nullptr;
  if (bed != nullptr) return *bed;
  bed = new Testbed();
  bed->scale = flags.GetDouble("scale", default_scale);

  core::ExploratoryPlatform::Options options;
  options.world.scale = bed->scale;
  options.world.seed = static_cast<uint64_t>(flags.GetInt("seed", 20160626));
  options.crawl.num_workers = static_cast<int>(flags.GetInt("workers", 8));

  std::printf("[testbed] generating world at scale %.3f (%lld companies, "
              "%lld users) and crawling...\n",
              bed->scale,
              static_cast<long long>(options.world.NumCompanies()),
              static_cast<long long>(options.world.NumUsers()));
  bed->platform = std::make_unique<core::ExploratoryPlatform>(options);
  Status s = bed->platform->CollectData();
  CFNET_CHECK(s.ok()) << "crawl failed: " << s.ToString();
  auto inputs = bed->platform->LoadInputs();
  CFNET_CHECK(inputs.ok()) << inputs.status().ToString();
  bed->inputs = std::make_unique<core::AnalysisInputs>(std::move(inputs).value());

  community::CodaConfig coda;
  coda.num_communities = static_cast<int>(
      flags.GetInt("communities", coda_communities));
  coda.max_iterations = static_cast<int>(
      flags.GetInt("coda_iterations", coda_iterations));
  bed->suite = std::make_unique<core::ExperimentSuite>(
      bed->platform->context(), *bed->inputs, coda);
  const auto& report = bed->platform->crawl_report();
  std::printf("[testbed] crawled %s companies / %s users; %s requests, "
              "simulated makespan %.1f min\n\n",
              WithThousandsSeparators(report.companies_crawled).c_str(),
              WithThousandsSeparators(report.users_crawled).c_str(),
              WithThousandsSeparators(report.fetch.requests).c_str(),
              static_cast<double>(report.makespan_micros) / 60e6);
  return *bed;
}

void PrintComparison(const std::string& name, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-58s paper: %-14s measured: %s\n", name.c_str(),
              paper.c_str(), measured.c_str());
}

void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

std::vector<char*> BenchmarkArgs(int argc, char** argv) {
  std::vector<char*> out;
  out.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) out.push_back(argv[i]);
  }
  return out;
}

void RunBenchmarks(int argc, char** argv) {
  std::vector<char*> args = BenchmarkArgs(argc, argv);
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  Section("microbenchmarks (google-benchmark)");
  benchmark::RunSpecifiedBenchmarks();
}

json::Json MachineInfoJson() {
  json::Json machine = json::Json::MakeObject();
  machine.Set("cpu_count",
              static_cast<int64_t>(ThreadPool::DefaultParallelism()));
#if defined(__x86_64__) || defined(_M_X64)
  machine.Set("arch", "x86_64");
#elif defined(__aarch64__) || defined(_M_ARM64)
  machine.Set("arch", "arm64");
#else
  machine.Set("arch", "unknown");
#endif
  machine.Set("simd_backend", simd::SimdBackendName());
  return machine;
}

void WriteJsonDoc(const std::string& path, const json::Json& doc) {
  json::Json full = doc;
  full.Set("machine", MachineInfoJson());
  std::ofstream out(path);
  out << full.Dump(2) << "\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace cfnet::bench
