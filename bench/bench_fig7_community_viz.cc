// Reproduces Figure 7: renders the strongest and weakest detected investor
// communities (investors blue, companies red) as SVG + GraphViz DOT files,
// and prints their strength metrics against the paper's. Benchmarks the
// force-directed layout.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "util/string_util.h"
#include "viz/layout.h"
#include "viz/render.h"

namespace cfnet::bench {
namespace {

void BM_FruchtermanReingold(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 1; i < n; ++i) edges.emplace_back(i, i / 2);  // tree
  viz::LayoutConfig config;
  config.iterations = 50;
  for (auto _ : state) {
    auto pos = viz::FruchtermanReingold(n, edges, config);
    benchmark::DoNotOptimize(pos.data());
  }
}
BENCHMARK(BM_FruchtermanReingold)->Arg(50)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  using namespace cfnet;
  using namespace cfnet::bench;
  FlagParser flags(argc, argv);
  Testbed& bed = GetTestbed(flags);

  core::Fig7Result fig7 = bed.suite->RunFig7();

  Section("Figure 7: strong vs weak community visualization");
  PrintComparison("strong community mean shared size", "2.1",
                  StrFormat("%.2f", fig7.strong.mean_shared));
  PrintComparison("strong community % shared-investor companies", "27.9%",
                  StrFormat("%.1f%%", fig7.strong.shared_investor_pct));
  PrintComparison("weak community mean shared size", "0.018",
                  StrFormat("%.3f", fig7.weak.mean_shared));
  PrintComparison("weak community % shared-investor companies", "12.5%",
                  StrFormat("%.1f%%", fig7.weak.shared_investor_pct));
  std::printf("  strong: %zu investors x %zu companies; weak: %zu x %zu\n",
              fig7.strong.num_investors, fig7.strong.num_companies,
              fig7.weak.num_investors, fig7.weak.num_companies);

  const std::string out_dir = flags.GetString("out", ".");
  struct Artifact {
    const char* path;
    const std::string* content;
  } artifacts[] = {
      {"/fig7_strong_community.svg", &fig7.strong.svg},
      {"/fig7_strong_community.dot", &fig7.strong.dot},
      {"/fig7_weak_community.svg", &fig7.weak.svg},
      {"/fig7_weak_community.dot", &fig7.weak.dot},
  };
  for (const auto& a : artifacts) {
    std::string path = out_dir + a.path;
    Status s = viz::WriteTextFile(path, *a.content);
    std::printf("  wrote %s (%zu bytes)%s\n", path.c_str(), a.content->size(),
                s.ok() ? "" : (" FAILED: " + s.ToString()).c_str());
  }

  RunBenchmarks(argc, argv);
  return 0;
}
