// Parallel graph-analytics engine benchmark: co-investment projection,
// §5.3 shared-investment metrics, Louvain, label propagation and Brandes
// betweenness on a synthetic heavy-tailed investor graph sized like the
// paper's AngelList snapshot (≈47k investors / 60k companies / 158k
// investments at --scale=1.0).
//
// Two comparisons are recorded:
//   * dense vs legacy — the rewritten kernels (dense touched-list scratch,
//     bitset intersection, direct CSR assembly) against faithful
//     reimplementations of the previous hash-map kernels, both single
//     threaded: the algorithmic speedup with no parallelism involved.
//   * thread scaling — the ParallelOptions kernels at 1/2/4/8 threads,
//     with every multi-thread result checked bit-identical to 1 thread.
//
// Results land in --json=PATH (default BENCH_graph.json); --scale and
// --reps trade time for stability.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <numeric>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "community/coda.h"
#include "community/community_set.h"
#include "community/incremental.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "graph/delta.h"
#include "core/community_metrics.h"
#include "graph/bipartite_graph.h"
#include "graph/centrality.h"
#include "graph/weighted_graph.h"
#include "json/json.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace cfnet::bench {
namespace {

// ---------------------------------------------------------------------------
// Legacy kernels — the hash-map implementations these benches replaced,
// kept verbatim (modulo being free functions) as single-thread baselines.
// ---------------------------------------------------------------------------

graph::WeightedGraph LegacyProjectLeft(const graph::BipartiteGraph& g,
                                       size_t max_right_degree) {
  std::unordered_map<uint64_t, double> pair_weight;
  for (uint32_t r = 0; r < g.num_right(); ++r) {
    auto investors = g.InNeighbors(r);
    if (max_right_degree > 0 && investors.size() > max_right_degree) continue;
    for (size_t i = 0; i < investors.size(); ++i) {
      for (size_t j = i + 1; j < investors.size(); ++j) {
        uint64_t key =
            (static_cast<uint64_t>(investors[i]) << 32) | investors[j];
        pair_weight[key] += 1.0;
      }
    }
  }
  std::vector<std::tuple<uint32_t, uint32_t, double>> edges;
  edges.reserve(pair_weight.size());
  for (const auto& [key, w] : pair_weight) {
    edges.emplace_back(static_cast<uint32_t>(key >> 32),
                       static_cast<uint32_t>(key & 0xffffffffull), w);
  }
  return graph::WeightedGraph::FromEdges(g.num_left(), edges);
}

std::vector<double> LegacySharedSizes(const graph::BipartiteGraph& g,
                                      const std::vector<uint32_t>& members) {
  const size_t m = members.size();
  std::vector<double> out;
  out.reserve(m * (m - 1) / 2);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      out.push_back(
          static_cast<double>(g.SharedOutNeighbors(members[i], members[j])));
    }
  }
  return out;
}

double LegacyMeanPercent(const graph::BipartiteGraph& g,
                         const community::CommunitySet& set, size_t k) {
  if (set.communities.empty()) return 0;
  double sum = 0;
  for (const auto& members : set.communities) {
    std::unordered_map<uint32_t, size_t> company_investors;
    for (uint32_t u : members) {
      for (uint32_t c : g.OutNeighbors(u)) ++company_investors[c];
    }
    if (company_investors.empty()) continue;
    size_t shared = 0;
    for (const auto& [c, count] : company_investors) {
      if (count >= k) ++shared;
    }
    sum += 100.0 * static_cast<double>(shared) /
           static_cast<double>(company_investors.size());
  }
  return sum / static_cast<double>(set.communities.size());
}

std::vector<int> LegacyLouvainLocalMove(const graph::WeightedGraph& g,
                                        const community::LouvainConfig& config,
                                        Rng& rng, bool* any_move) {
  const size_t n = g.num_nodes();
  std::vector<int> label(n);
  std::iota(label.begin(), label.end(), 0);
  const double m2 = g.TotalWeight2m();
  *any_move = false;
  if (m2 <= 0) return label;
  std::vector<double> sigma_tot(n, 0);
  for (uint32_t v = 0; v < n; ++v) sigma_tot[v] = g.WeightedDegree(v);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  std::unordered_map<int, double> weight_to;
  for (int sweep = 0; sweep < config.max_sweeps_per_level; ++sweep) {
    bool moved = false;
    for (uint32_t v : order) {
      const double k_v = g.WeightedDegree(v);
      if (k_v <= 0) continue;
      weight_to.clear();
      auto nbrs = g.Neighbors(v);
      auto ws = g.Weights(v);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] == v) continue;
        weight_to[label[nbrs[i]]] += ws[i];
      }
      const int old_c = label[v];
      sigma_tot[static_cast<size_t>(old_c)] -= k_v;
      double best_gain = 0;
      int best_c = old_c;
      double w_old = 0;
      if (auto it = weight_to.find(old_c); it != weight_to.end()) {
        w_old = it->second;
      }
      for (const auto& [cand, w_in] : weight_to) {
        double gain = (w_in - w_old) / m2 * 2.0 -
                      k_v * (sigma_tot[static_cast<size_t>(cand)] -
                             sigma_tot[static_cast<size_t>(old_c)]) /
                          (m2 * m2) * 2.0;
        if (gain > best_gain + config.min_modularity_gain) {
          best_gain = gain;
          best_c = cand;
        }
      }
      sigma_tot[static_cast<size_t>(best_c)] += k_v;
      if (best_c != old_c) {
        label[v] = best_c;
        moved = true;
        *any_move = true;
      }
    }
    if (!moved) break;
  }
  return label;
}

graph::WeightedGraph LegacyLouvainAggregate(const graph::WeightedGraph& g,
                                            std::vector<int>& labels,
                                            size_t* num_out) {
  std::unordered_map<int, int> remap;
  for (int& l : labels) {
    auto [it, inserted] = remap.try_emplace(l, static_cast<int>(remap.size()));
    l = it->second;
  }
  *num_out = remap.size();
  std::unordered_map<uint64_t, double> agg;
  for (uint32_t v = 0; v < g.num_nodes(); ++v) {
    auto nbrs = g.Neighbors(v);
    auto ws = g.Weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] < v) continue;
      double w = ws[i];
      if (nbrs[i] == v) w *= 0.5;
      uint32_t a = static_cast<uint32_t>(labels[v]);
      uint32_t b = static_cast<uint32_t>(labels[nbrs[i]]);
      if (a > b) std::swap(a, b);
      agg[(static_cast<uint64_t>(a) << 32) | b] += w;
    }
  }
  std::vector<std::tuple<uint32_t, uint32_t, double>> edges;
  edges.reserve(agg.size());
  for (const auto& [key, w] : agg) {
    edges.emplace_back(static_cast<uint32_t>(key >> 32),
                       static_cast<uint32_t>(key & 0xffffffffull), w);
  }
  return graph::WeightedGraph::FromEdges(*num_out, edges);
}

std::vector<int> LegacyLouvain(const graph::WeightedGraph& g,
                               const community::LouvainConfig& config) {
  const size_t n = g.num_nodes();
  if (n == 0) return {};
  Rng rng(config.seed);
  std::vector<int> node_map(n);
  std::iota(node_map.begin(), node_map.end(), 0);
  graph::WeightedGraph current = g;
  for (int level = 0; level < config.max_levels; ++level) {
    bool any_move = false;
    std::vector<int> labels =
        LegacyLouvainLocalMove(current, config, rng, &any_move);
    size_t num_comms = 0;
    graph::WeightedGraph next =
        LegacyLouvainAggregate(current, labels, &num_comms);
    for (size_t v = 0; v < n; ++v) {
      node_map[v] = labels[static_cast<size_t>(node_map[v])];
    }
    if (!any_move || num_comms == current.num_nodes()) break;
    current = std::move(next);
  }
  return node_map;
}

std::vector<int> LegacyLabelPropagation(
    const graph::WeightedGraph& g,
    const community::LabelPropagationConfig& config) {
  const size_t n = g.num_nodes();
  std::vector<int> label(n);
  std::iota(label.begin(), label.end(), 0);
  Rng rng(config.seed);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::unordered_map<int, double> weight_of;
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    rng.Shuffle(order);
    bool changed = false;
    for (uint32_t v : order) {
      auto nbrs = g.Neighbors(v);
      if (nbrs.empty()) continue;
      auto ws = g.Weights(v);
      weight_of.clear();
      for (size_t i = 0; i < nbrs.size(); ++i) {
        weight_of[label[nbrs[i]]] += ws[i];
      }
      int best = label[v];
      double best_w = -1;
      for (const auto& [l, w] : weight_of) {
        if (w > best_w || (w == best_w && l == label[v]) ||
            (w == best_w && best != label[v] && l < best)) {
          best_w = w;
          best = l;
        }
      }
      if (best != label[v]) {
        label[v] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return label;
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Heavy-tailed synthetic investor->company graph: investor out-degrees are
/// power-law distributed, company popularity is Zipfian (so a few companies
/// have huge investor lists — the regime the bitset intersection and the
/// projection degree cap exist for).
graph::BipartiteGraph MakeGraph(size_t investors, size_t companies,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(investors * 4);
  for (size_t i = 0; i < investors; ++i) {
    const size_t degree = static_cast<size_t>(rng.PowerLaw(1, 400, 2.2));
    for (size_t d = 0; d < degree; ++d) {
      const uint64_t c = static_cast<uint64_t>(
          rng.Zipf(static_cast<int64_t>(companies), 0.75));
      edges.emplace_back(i + 1, 1000000 + c);
    }
  }
  return graph::BipartiteGraph::FromEdges(edges);
}

struct Timing {
  double ms_per_rep = 0;
};

template <typename F>
Timing Time(F&& fn, int reps) {
  fn();  // warmup
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) fn();
  auto t1 = std::chrono::steady_clock::now();
  Timing t;
  t.ms_per_rep = std::chrono::duration<double, std::milli>(t1 - t0).count() /
                 static_cast<double>(reps);
  return t;
}

std::vector<double> FlattenWeights(const graph::WeightedGraph& g) {
  std::vector<double> flat;
  for (uint32_t v = 0; v < g.num_nodes(); ++v) {
    auto nbrs = g.Neighbors(v);
    auto ws = g.Weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      flat.push_back(static_cast<double>(nbrs[i]));
      flat.push_back(ws[i]);
    }
  }
  return flat;
}

void RunGraphBench(const FlagParser& flags) {
  const double scale = flags.GetDouble("scale", 1.0);
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  const std::string path = flags.GetString("json", "BENCH_graph.json");
  const size_t investors = static_cast<size_t>(47000 * scale);
  const size_t companies = static_cast<size_t>(60000 * scale);
  constexpr size_t kMaxRightDegree = 500;  // projection popularity cap

  graph::BipartiteGraph g = MakeGraph(investors, companies, 20260806);
  std::printf("graph: %zu investors, %zu companies, %zu investments\n",
              g.num_left(), g.num_right(), g.num_edges());

  json::Json out_doc = json::Json::MakeObject();
  out_doc.Set("bench", "bench_graph");
  out_doc.Set("scale", scale);
  out_doc.Set("investors", static_cast<int64_t>(g.num_left()));
  out_doc.Set("companies", static_cast<int64_t>(g.num_right()));
  out_doc.Set("investments", static_cast<int64_t>(g.num_edges()));
  out_doc.Set("hardware_threads",
              static_cast<int64_t>(ThreadPool::DefaultParallelism()));

  // Shared-investment community: the most active investors (the paper's
  // §5.3 communities are dominated by them), capped so the all-pairs
  // triangle stays near ~1M pairs. Heavy portfolios are exactly where the
  // bitset intersection replaces the O(d_i + d_j) merge.
  std::vector<uint32_t> members;
  {
    std::vector<std::pair<size_t, uint32_t>> by_degree;
    for (uint32_t l = 0; l < g.num_left(); ++l) {
      if (g.OutDegree(l) >= 4) by_degree.emplace_back(g.OutDegree(l), l);
    }
    std::sort(by_degree.rbegin(), by_degree.rend());
    if (by_degree.size() > 1500) by_degree.resize(1500);
    for (const auto& [d, l] : by_degree) members.push_back(l);
    std::sort(members.begin(), members.end());
  }
  size_t bitset_rows = 0;
  for (uint32_t l : members) bitset_rows += g.OutDegree(l) >= 64 ? 1 : 0;
  std::printf("community: %zu members (%zu pairs, %zu bitset rows)\n",
              members.size(), members.size() * (members.size() - 1) / 2,
              bitset_rows);

  // ---- dense vs legacy (single thread, no pool): algorithmic speedup ----
  Section("dense-scratch / bitset kernels vs legacy hash-map kernels (1 thread)");
  json::Json dense_vs_legacy = json::Json::MakeArray();
  auto emit_pair = [&dense_vs_legacy](const std::string& name, double legacy_ms,
                                      double dense_ms) {
    const double speedup = dense_ms > 0 ? legacy_ms / dense_ms : 0.0;
    json::Json row = json::Json::MakeObject();
    row.Set("workload", name);
    row.Set("legacy_ms", legacy_ms);
    row.Set("dense_ms", dense_ms);
    row.Set("speedup", speedup);
    dense_vs_legacy.Append(std::move(row));
    std::printf("%-22s legacy %9.2f ms   dense %9.2f ms   %5.2fx\n",
                name.c_str(), legacy_ms, dense_ms, speedup);
    return speedup;
  };

  graph::WeightedGraph proj;
  emit_pair(
      "project_left",
      Time([&]() {
        benchmark::DoNotOptimize(LegacyProjectLeft(g, kMaxRightDegree));
      }, reps).ms_per_rep,
      Time([&]() {
        proj = graph::WeightedGraph::ProjectLeft(g, kMaxRightDegree);
        benchmark::DoNotOptimize(proj.num_edges());
      }, reps).ms_per_rep);
  std::printf("projection: %zu nodes, %zu edges\n", proj.num_nodes(),
              proj.num_edges());

  std::vector<double> shared_ref;
  const double shared_speedup = emit_pair(
      "shared_sizes",
      Time([&]() {
        benchmark::DoNotOptimize(LegacySharedSizes(g, members));
      }, reps).ms_per_rep,
      Time([&]() {
        shared_ref = core::SharedInvestmentSizes(g, members);
        benchmark::DoNotOptimize(shared_ref.data());
      }, reps).ms_per_rep);
  CFNET_CHECK(shared_ref == LegacySharedSizes(g, members));

  community::LouvainResult louvain = community::RunLouvain(proj);
  community::CommunitySet& comms = louvain.communities;
  emit_pair(
      "mean_shared_percent",
      Time([&]() {
        benchmark::DoNotOptimize(LegacyMeanPercent(g, comms, 2));
      }, reps).ms_per_rep,
      Time([&]() {
        benchmark::DoNotOptimize(
            core::MeanSharedInvestorCompanyPercent(g, comms));
      }, reps).ms_per_rep);
  CFNET_CHECK(core::MeanSharedInvestorCompanyPercent(g, comms) ==
              LegacyMeanPercent(g, comms, 2));

  const double louvain_speedup = emit_pair(
      "louvain",
      Time([&]() { benchmark::DoNotOptimize(LegacyLouvain(proj, {})); },
           reps).ms_per_rep,
      Time([&]() {
        benchmark::DoNotOptimize(community::RunLouvain(proj).labels.size());
      }, reps).ms_per_rep);

  emit_pair(
      "label_propagation",
      Time([&]() {
        benchmark::DoNotOptimize(LegacyLabelPropagation(proj, {}));
      }, reps).ms_per_rep,
      Time([&]() {
        benchmark::DoNotOptimize(
            community::RunLabelPropagation(proj).labels.size());
      }, reps).ms_per_rep);

  // ---- thread scaling over the ParallelOptions kernels ------------------
  Section("thread scaling (bit-identity to 1 thread checked per workload)");
  const size_t bc_sources = 64;
  const size_t global_pairs = static_cast<size_t>(800000 * scale);
  struct Workload {
    std::string name;
    std::function<void(const ParallelOptions&)> run;
    std::function<std::vector<double>(const ParallelOptions&)> result;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"project_left",
       [&](const ParallelOptions& par) {
         benchmark::DoNotOptimize(
             graph::WeightedGraph::ProjectLeft(g, kMaxRightDegree, par)
                 .num_edges());
       },
       [&](const ParallelOptions& par) {
         return FlattenWeights(
             graph::WeightedGraph::ProjectLeft(g, kMaxRightDegree, par));
       }});
  workloads.push_back(
      {"shared_sizes",
       [&](const ParallelOptions& par) {
         benchmark::DoNotOptimize(
             core::SharedInvestmentSizes(g, members, 2000000, 1, par).data());
       },
       [&](const ParallelOptions& par) {
         return core::SharedInvestmentSizes(g, members, 2000000, 1, par);
       }});
  workloads.push_back(
      {"global_sample",
       [&](const ParallelOptions& par) {
         benchmark::DoNotOptimize(
             core::GlobalSharedInvestmentSample(g, global_pairs, 1, par)
                 .data());
       },
       [&](const ParallelOptions& par) {
         return core::GlobalSharedInvestmentSample(g, global_pairs, 1, par);
       }});
  workloads.push_back(
      {"betweenness_64src",
       [&](const ParallelOptions& par) {
         benchmark::DoNotOptimize(
             graph::BetweennessCentrality(proj, bc_sources, 1, par).data());
       },
       [&](const ParallelOptions& par) {
         return graph::BetweennessCentrality(proj, bc_sources, 1, par);
       }});

  json::Json scaling = json::Json::MakeArray();
  for (const Workload& w : workloads) {
    std::vector<double> reference = w.result({});
    json::Json rows = json::Json::MakeArray();
    double base_ms = 0;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      ThreadPool pool(threads);
      ParallelOptions par{&pool};
      CFNET_CHECK(w.result(par) == reference);  // bit-identical to 1 thread
      const double ms = Time([&]() { w.run(par); }, reps).ms_per_rep;
      if (threads == 1) base_ms = ms;
      json::Json row = json::Json::MakeObject();
      row.Set("threads", static_cast<int64_t>(threads));
      row.Set("ms_per_rep", ms);
      row.Set("speedup_vs_1t", ms > 0 ? base_ms / ms : 0.0);
      rows.Append(std::move(row));
      std::printf("%-20s %zu threads  %9.2f ms  (%.2fx vs 1t)\n",
                  w.name.c_str(), threads, ms, ms > 0 ? base_ms / ms : 0.0);
    }
    json::Json entry = json::Json::MakeObject();
    entry.Set("workload", w.name);
    entry.Set("rows", std::move(rows));
    scaling.Append(std::move(entry));
  }

  // ---- SIMD kernels vs scalar fallback (single thread) ------------------
  // All three families are timed at 1 thread: on the 1-vCPU bench host the
  // single-thread numbers are the trustworthy signal (multi-thread rows
  // above measure oversubscription, not scaling). Every comparison checks
  // byte-identity between the two backends before it is trusted.
  Section("simd kernels vs scalar fallback (1 thread; bit-identity checked)");
  json::Json simd_rows = json::Json::MakeArray();
  auto emit_simd = [&simd_rows](const std::string& name, double scalar_ms,
                                double simd_ms) {
    const double speedup = simd_ms > 0 ? scalar_ms / simd_ms : 0.0;
    json::Json row = json::Json::MakeObject();
    row.Set("kernel", name);
    row.Set("scalar_ms", scalar_ms);
    row.Set("simd_ms", simd_ms);
    row.Set("speedup", speedup);
    simd_rows.Append(std::move(row));
    std::printf("%-26s scalar %9.2f ms   simd %9.2f ms   %5.2fx\n",
                name.c_str(), scalar_ms, simd_ms, speedup);
  };

  // coda_row_update: the full projected-gradient fit (gather, fused
  // expm1-weighted gradient, clamped step, Armijo objective) end to end.
  {
    community::CodaConfig coda_config;
    coda_config.num_communities = 32;
    coda_config.max_iterations = 2;
    coda_config.num_threads = 1;
    coda_config.seed = 11;
    community::Coda coda(coda_config);
    community::CodaResult fit_simd = coda.Fit(g);
    const double simd_ms = Time([&]() {
      benchmark::DoNotOptimize(coda.Fit(g).final_log_likelihood);
    }, reps).ms_per_rep;
    double scalar_ms;
    {
      simd::ScopedForceScalar force;
      community::CodaResult fit_scalar = coda.Fit(g);
      CFNET_CHECK(fit_scalar.f == fit_simd.f);
      CFNET_CHECK(fit_scalar.h == fit_simd.h);
      CFNET_CHECK(fit_scalar.log_likelihood_trace ==
                  fit_simd.log_likelihood_trace);
      scalar_ms = Time([&]() {
        benchmark::DoNotOptimize(coda.Fit(g).final_log_likelihood);
      }, reps).ms_per_rep;
    }
    emit_simd("coda_row_update", scalar_ms, simd_ms);
  }

  // bitset_intersect: SharedInvestmentSizes over the top-degree community,
  // end to end (AND+popcount on high-high pairs, bitset probes elsewhere).
  {
    const std::vector<double> sizes_simd =
        core::SharedInvestmentSizes(g, members);
    const double simd_ms = Time([&]() {
      benchmark::DoNotOptimize(core::SharedInvestmentSizes(g, members).data());
    }, reps).ms_per_rep;
    double scalar_ms;
    {
      simd::ScopedForceScalar force;
      CFNET_CHECK(core::SharedInvestmentSizes(g, members) == sizes_simd);
      scalar_ms = Time([&]() {
        benchmark::DoNotOptimize(
            core::SharedInvestmentSizes(g, members).data());
      }, reps).ms_per_rep;
    }
    emit_simd("bitset_intersect", scalar_ms, simd_ms);
  }

  // bitset_intersect_kernel: AndPopcountU64 in isolation on company-sized
  // bitset rows (the dispatched nibble-LUT path vs the scalar word loop).
  {
    const size_t words = (g.num_right() + 63) / 64;
    Rng rng(29);
    std::vector<uint64_t> wa(words), wb(words);
    for (auto& w : wa) w = rng.Next();
    for (auto& w : wb) w = rng.Next();
    constexpr int kInner = 4000;
    CFNET_CHECK(simd::AndPopcountU64(wa.data(), wb.data(), words) ==
                simd::AndPopcountU64Scalar(wa.data(), wb.data(), words));
    const double simd_ms = Time([&]() {
      uint64_t acc = 0;
      for (int it = 0; it < kInner; ++it) {
        acc += simd::AndPopcountU64(wa.data(), wb.data(), words);
      }
      benchmark::DoNotOptimize(acc);
    }, reps).ms_per_rep;
    const double scalar_ms = Time([&]() {
      uint64_t acc = 0;
      for (int it = 0; it < kInner; ++it) {
        acc += simd::AndPopcountU64Scalar(wa.data(), wb.data(), words);
      }
      benchmark::DoNotOptimize(acc);
    }, reps).ms_per_rep;
    emit_simd("bitset_intersect_kernel", scalar_ms, simd_ms);
  }

  // stats_reduce: the moment/correlation reductions feeding the Figure-6
  // pipeline (SumF64 + SumSqDiffF64 + PearsonAccumF64 over one array of
  // investment sizes per rep).
  {
    const size_t n = size_t{1} << 21;
    Rng rng(31);
    std::vector<double> xs(n), ys(n);
    for (size_t i = 0; i < n; ++i) {
      xs[i] = rng.Uniform(-2.0, 2.0);
      ys[i] = 0.4 * xs[i] + rng.Uniform(-1.0, 1.0);
    }
    auto reduce = [&](auto sum_fn, auto ssd_fn, auto pearson_fn) {
      const double s = sum_fn(xs.data(), n);
      const double ssd = ssd_fn(xs.data(), n, s / static_cast<double>(n));
      double sxy, sxx, syy;
      pearson_fn(xs.data(), ys.data(), n, 0.0, 0.0, &sxy, &sxx, &syy);
      return s + ssd + sxy + sxx + syy;
    };
    CFNET_CHECK(reduce(simd::SumF64, simd::SumSqDiffF64,
                       simd::PearsonAccumF64) ==
                reduce(simd::SumF64Scalar, simd::SumSqDiffF64Scalar,
                       simd::PearsonAccumF64Scalar));
    const double simd_ms = Time([&]() {
      benchmark::DoNotOptimize(
          reduce(simd::SumF64, simd::SumSqDiffF64, simd::PearsonAccumF64));
    }, reps).ms_per_rep;
    const double scalar_ms = Time([&]() {
      benchmark::DoNotOptimize(reduce(simd::SumF64Scalar,
                                      simd::SumSqDiffF64Scalar,
                                      simd::PearsonAccumF64Scalar));
    }, reps).ms_per_rep;
    emit_simd("stats_reduce", scalar_ms, simd_ms);
  }

  // ---- incremental epoch maintenance vs full rebuild --------------------
  // Delta batches at 0.1% / 1% / 10% of the edge count, mixing removals of
  // existing investments, brand-new companies, and extra investments into
  // existing companies. The incremental path (delta-CSR merge + frontier
  // projection update + warm-started Louvain) is checked bit-identical to
  // the full rebuild on the bipartite graph and the projection before any
  // timing is trusted; the refined partition must stay within 0.05
  // modularity of the full recompute.
  Section("incremental epoch update vs full rebuild (bit-identity checked)");
  json::Json inc_rows = json::Json::MakeArray();
  json::Json coda_warm_row = json::Json::MakeObject();
  double inc_speedup_1pct = 0;
  {
    std::vector<std::pair<uint64_t, uint64_t>> base_edges;
    base_edges.reserve(g.num_edges());
    for (uint32_t l = 0; l < g.num_left(); ++l) {
      for (uint32_t r : g.OutNeighbors(l)) {
        base_edges.emplace_back(g.LeftId(l), g.RightId(r));
      }
    }
    const community::IncrementalCommunityConfig refine_config;
    for (double frac : {0.001, 0.01, 0.1}) {
      const size_t num_deltas = std::max<size_t>(
          1, static_cast<size_t>(frac * static_cast<double>(g.num_edges())));
      Rng rng(20260807 + static_cast<uint64_t>(frac * 1e6));
      std::vector<graph::EdgeDelta> deltas;
      deltas.reserve(num_deltas);
      for (size_t i = 0; i < num_deltas; ++i) {
        switch (i % 3) {
          case 0: {  // an existing investment is withdrawn
            const auto& e = base_edges[rng.Next() % base_edges.size()];
            deltas.push_back({e.first, e.second, /*add=*/false});
            break;
          }
          case 1: {  // a brand-new company enters the graph
            deltas.push_back(
                {g.LeftId(static_cast<uint32_t>(rng.Next() % g.num_left())),
                 2000000 + rng.Next() % g.num_right(), /*add=*/true});
            break;
          }
          default: {  // an extra investment into an existing company
            deltas.push_back(
                {g.LeftId(static_cast<uint32_t>(rng.Next() % g.num_left())),
                 g.RightId(static_cast<uint32_t>(rng.Next() % g.num_right())),
                 /*add=*/true});
            break;
          }
        }
      }
      // Batch ground truth: the deltas applied in order to the flat edge set.
      std::set<std::pair<uint64_t, uint64_t>> edge_set(base_edges.begin(),
                                                       base_edges.end());
      for (const graph::EdgeDelta& d : deltas) {
        if (d.add) {
          edge_set.insert({d.left_id, d.right_id});
        } else {
          edge_set.erase({d.left_id, d.right_id});
        }
      }
      const std::vector<std::pair<uint64_t, uint64_t>> merged_edges(
          edge_set.begin(), edge_set.end());

      graph::BipartiteGraph full_graph;
      graph::WeightedGraph full_proj;
      community::LouvainResult full_louvain;
      const double full_ms = Time([&]() {
        full_graph = graph::BipartiteGraph::FromEdges(merged_edges);
        full_proj =
            graph::WeightedGraph::ProjectLeft(full_graph, kMaxRightDegree);
        full_louvain = community::RunLouvain(full_proj);
        benchmark::DoNotOptimize(full_louvain.modularity);
      }, reps).ms_per_rep;

      graph::DeltaMergeResult merge;
      graph::WeightedGraph inc_proj;
      std::vector<uint32_t> frontier;
      community::RefineResult refined;
      const double inc_ms = Time([&]() {
        merge = graph::MergeBipartiteDelta(g, deltas);
        frontier = graph::ProjectionFrontier(g, merge, kMaxRightDegree);
        inc_proj = graph::UpdateProjection(proj, g, merge, kMaxRightDegree);
        std::vector<int> seeds = community::MapLabels(
            louvain.labels, merge.old_to_new_left, merge.graph.num_left());
        refined = community::RefineLouvain(inc_proj, seeds, frontier,
                                           louvain.modularity, refine_config);
        benchmark::DoNotOptimize(refined.modularity);
      }, reps).ms_per_rep;

      // Bit-identity: the merged CSR and the updated projection must match
      // the from-scratch rebuild exactly.
      CFNET_CHECK(full_graph.num_left() == merge.graph.num_left());
      CFNET_CHECK(full_graph.num_right() == merge.graph.num_right());
      CFNET_CHECK(full_graph.num_edges() == merge.graph.num_edges());
      for (uint32_t l = 0; l < full_graph.num_left(); ++l) {
        CFNET_CHECK(full_graph.LeftId(l) == merge.graph.LeftId(l));
        auto a = full_graph.OutNeighbors(l);
        auto b = merge.graph.OutNeighbors(l);
        CFNET_CHECK(std::equal(a.begin(), a.end(), b.begin(), b.end()));
      }
      for (uint32_t r = 0; r < full_graph.num_right(); ++r) {
        CFNET_CHECK(full_graph.RightId(r) == merge.graph.RightId(r));
      }
      CFNET_CHECK(FlattenWeights(full_proj) == FlattenWeights(inc_proj));
      CFNET_CHECK(refined.modularity >= full_louvain.modularity - 0.05);

      const double speedup = inc_ms > 0 ? full_ms / inc_ms : 0.0;
      if (frac == 0.01) inc_speedup_1pct = speedup;
      json::Json row = json::Json::MakeObject();
      row.Set("delta_fraction", frac);
      row.Set("delta_edges", static_cast<int64_t>(num_deltas));
      row.Set("frontier_size", static_cast<int64_t>(frontier.size()));
      row.Set("rows_reused", static_cast<int64_t>(merge.stats.rows_reused));
      row.Set("rows_rebuilt", static_cast<int64_t>(merge.stats.rows_rebuilt));
      row.Set("full_rebuild_ms", full_ms);
      row.Set("incremental_ms", inc_ms);
      row.Set("speedup", speedup);
      row.Set("full_modularity", full_louvain.modularity);
      row.Set("incremental_modularity", refined.modularity);
      row.Set("fell_back_full", refined.full_rebuild);
      inc_rows.Append(std::move(row));
      std::printf("delta %5.1f%% (%6zu edges, frontier %6zu)  full %9.2f ms  "
                  "incremental %9.2f ms  %6.2fx  dQ %+0.4f\n",
                  frac * 100.0, num_deltas, frontier.size(), full_ms, inc_ms,
                  speedup, refined.modularity - full_louvain.modularity);

      // CoDA warm start vs cold fit at the 1% delta point.
      if (frac == 0.01) {
        community::CodaConfig coda_config;
        coda_config.num_communities = 32;
        coda_config.max_iterations = 5;
        coda_config.num_threads = 1;
        coda_config.seed = 11;
        community::Coda coda(coda_config);
        community::CodaResult base_fit = coda.Fit(g);
        community::CodaResult cold;
        const double cold_ms = Time([&]() {
          cold = coda.Fit(merge.graph);
          benchmark::DoNotOptimize(cold.final_log_likelihood);
        }, reps).ms_per_rep;
        community::CodaWarmStart warm;
        warm.previous = &base_fit;
        warm.old_to_new_left = merge.old_to_new_left;
        warm.old_to_new_right = merge.old_to_new_right;
        warm.frontier_left = frontier;
        for (const graph::TouchedRight& tr : merge.touched_rights) {
          if (tr.new_index != graph::BipartiteGraph::kInvalidIndex) {
            warm.frontier_right.push_back(tr.new_index);
          }
        }
        std::sort(warm.frontier_right.begin(), warm.frontier_right.end());
        community::CodaResult warm_fit;
        const double warm_ms = Time([&]() {
          warm_fit = coda.FitWarm(merge.graph, warm);
          benchmark::DoNotOptimize(warm_fit.final_log_likelihood);
        }, reps).ms_per_rep;
        coda_warm_row.Set("delta_fraction", frac);
        coda_warm_row.Set("cold_ms", cold_ms);
        coda_warm_row.Set("warm_ms", warm_ms);
        coda_warm_row.Set("speedup", warm_ms > 0 ? cold_ms / warm_ms : 0.0);
        coda_warm_row.Set("cold_log_likelihood", cold.final_log_likelihood);
        coda_warm_row.Set("warm_log_likelihood", warm_fit.final_log_likelihood);
        std::printf("coda 1%% delta: cold %9.2f ms  warm %9.2f ms  %5.2fx  "
                    "(ll cold %.1f / warm %.1f)\n",
                    cold_ms, warm_ms, warm_ms > 0 ? cold_ms / warm_ms : 0.0,
                    cold.final_log_likelihood, warm_fit.final_log_likelihood);
      }
    }
  }

  out_doc.Set("dense_vs_legacy", std::move(dense_vs_legacy));
  out_doc.Set("incremental", std::move(inc_rows));
  out_doc.Set("incremental_coda", std::move(coda_warm_row));
  out_doc.Set("thread_scaling", std::move(scaling));
  out_doc.Set("simd_backend", simd::SimdBackendName());
  out_doc.Set("simd", std::move(simd_rows));
  out_doc.Set("simd_note",
              "single-thread scalar-vs-dispatched comparisons; outputs "
              "checked byte-identical before timing. Single-thread numbers "
              "are the trustworthy signal on the 1-vCPU bench host.");
  std::printf("acceptance: shared_sizes %.2fx, louvain %.2fx (target 1.3x)\n",
              shared_speedup, louvain_speedup);
  std::printf("acceptance: incremental 1%% delta epoch %.2fx vs full rebuild "
              "(target 5x)\n",
              inc_speedup_1pct);

  WriteJsonDoc(path, out_doc);
}

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  cfnet::FlagParser flags(argc, argv);
  cfnet::bench::RunGraphBench(flags);
  return 0;
}
