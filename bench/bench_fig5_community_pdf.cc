// Reproduces Figure 5: the PDF (KDE) across CoDA communities of the
// percentage of companies with >= 2 shared investors, with the random-
// community baseline comparison. Benchmarks the per-community metric.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/community_metrics.h"
#include "util/string_util.h"

namespace cfnet::bench {
namespace {

Testbed* g_bed = nullptr;

void BM_SharedInvestorPercentAllCommunities(benchmark::State& state) {
  const graph::BipartiteGraph& g = g_bed->suite->filtered_graph();
  const auto& set = g_bed->suite->coda().investor_communities;
  for (auto _ : state) {
    double mean = core::MeanSharedInvestorCompanyPercent(g, set, 2);
    benchmark::DoNotOptimize(mean);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(set.communities.size()));
}
BENCHMARK(BM_SharedInvestorPercentAllCommunities)->Unit(benchmark::kMillisecond);

void BM_KdeEstimation(benchmark::State& state) {
  std::vector<double> samples;
  for (int i = 0; i < 96; ++i) samples.push_back((i * 37) % 100);
  for (auto _ : state) {
    auto kde = stats::GaussianKde(samples, 0, 100, 101);
    benchmark::DoNotOptimize(kde.data());
  }
}
BENCHMARK(BM_KdeEstimation)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  using namespace cfnet;
  using namespace cfnet::bench;
  FlagParser flags(argc, argv);
  Testbed& bed = GetTestbed(flags);
  g_bed = &bed;

  core::Fig5Result fig5 = bed.suite->RunFig5();

  Section("Figure 5: PDF of % companies with >= 2 shared investors");
  PrintComparison("communities measured", "96",
                  std::to_string(fig5.community_percents.size()));
  PrintComparison("mean shared-investor percentage", "23.1%",
                  StrFormat("%.1f%%", fig5.mean_percent));
  PrintComparison("randomized-community baseline", "5.8%",
                  StrFormat("%.1f%%", fig5.random_mean_percent));
  PrintComparison("herding lift over random", "4.0x",
                  fig5.random_mean_percent > 0
                      ? StrFormat("%.1fx",
                                  fig5.mean_percent / fig5.random_mean_percent)
                      : "inf");

  std::printf("\n  KDE of the per-community percentages (x = %%, density):\n");
  for (size_t i = 0; i < fig5.kde.size(); i += 5) {
    std::printf("  %5.1f  %.5f\n", fig5.kde[i].first, fig5.kde[i].second);
  }

  std::printf("\n  communities above 20%% shared investors: ");
  size_t high = 0;
  for (double p : fig5.community_percents) {
    if (p >= 20.0) ++high;
  }
  std::printf("%zu of %zu (paper: 'upwards of 20%% in a number of "
              "communities')\n",
              high, fig5.community_percents.size());

  RunBenchmarks(argc, argv);
  return 0;
}
