// Ablation: what each data source contributes to the investor graph.
// Compares AngelList-only, CrunchBase-only and merged edge sets on graph
// size and the community-strength metrics — quantifying why the paper's
// platform integrates multiple sources (§3's CrunchBase augmentation).

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "community/coda.h"
#include "core/community_metrics.h"
#include "dataflow/dataset.h"
#include "util/string_util.h"
#include "util/table.h"

namespace cfnet::bench {
namespace {

Testbed* g_bed = nullptr;

graph::BipartiteGraph GraphFromPacked(const std::vector<uint64_t>& packed) {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(packed.size());
  for (uint64_t e : packed) {
    edges.emplace_back(e >> 32, e & 0xffffffffull);
  }
  return graph::BipartiteGraph::FromEdges(edges);
}

struct SourceRow {
  std::string name;
  graph::BipartiteGraph graph;
};

void BM_EdgeProvenance(benchmark::State& state) {
  for (auto _ : state) {
    core::EdgeProvenance p = core::ComputeEdgeProvenance(
        g_bed->platform->context(), *g_bed->inputs);
    benchmark::DoNotOptimize(p.merged_unique_edges);
  }
}
BENCHMARK(BM_EdgeProvenance)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  using namespace cfnet;
  using namespace cfnet::bench;
  using dataflow::Dataset;
  FlagParser flags(argc, argv);
  Testbed& bed = GetTestbed(flags);
  g_bed = &bed;
  auto ctx = bed.platform->context();

  // Build the three edge sets (packed investor<<32|company).
  auto al_edges =
      Dataset<core::UserRecord>::FromVector(ctx, bed.inputs->users)
          .FlatMap([](const core::UserRecord& u) {
            std::vector<uint64_t> out;
            for (uint64_t c : u.investment_company_ids) {
              out.push_back((u.id << 32) | c);
            }
            return out;
          })
          .Distinct()
          .Collect();
  auto cb_edges =
      Dataset<core::CrunchBaseRecord>::FromVector(ctx, bed.inputs->crunchbase)
          .FlatMap([](const core::CrunchBaseRecord& r) {
            std::vector<uint64_t> out;
            for (uint64_t inv : r.round_investor_ids) {
              out.push_back((inv << 32) | r.angellist_id);
            }
            return out;
          })
          .Distinct()
          .Collect();
  std::vector<uint64_t> merged = al_edges;
  merged.insert(merged.end(), cb_edges.begin(), cb_edges.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

  std::vector<SourceRow> sources;
  sources.push_back({"AngelList only", GraphFromPacked(al_edges)});
  sources.push_back({"CrunchBase only", GraphFromPacked(cb_edges)});
  sources.push_back({"Merged (paper)", GraphFromPacked(merged)});

  Section("ablation: investor graph per data source");
  AsciiTable table({"source", "investors", "companies", "edges",
                    "mean degree", "investors w/ >=4", "Fig5 metric (CoDA)"});
  for (auto& src : sources) {
    const graph::BipartiteGraph& g = src.graph;
    graph::BipartiteGraph filtered = g.FilterLeftByMinDegree(4);
    community::CodaConfig coda_config;
    coda_config.num_communities = 96;
    coda_config.max_iterations = 15;
    community::CodaResult coda = community::Coda(coda_config).Fit(filtered);
    double fig5 = core::MeanSharedInvestorCompanyPercent(
        filtered, coda.investor_communities, 2);
    graph::DegreeSummary deg = SummarizeOutDegrees(g);
    table.AddRow({src.name,
                  WithThousandsSeparators(static_cast<int64_t>(g.num_left())),
                  WithThousandsSeparators(static_cast<int64_t>(g.num_right())),
                  WithThousandsSeparators(static_cast<int64_t>(g.num_edges())),
                  StrFormat("%.2f", deg.mean),
                  WithThousandsSeparators(
                      static_cast<int64_t>(filtered.num_left())),
                  StrFormat("%.1f%%", fig5)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("AngelList alone misses ~%d%% of edges; CrunchBase alone only "
              "covers funded companies — the merge recovers the full set "
              "(\"AngelList data is incomplete\", §3).\n",
              static_cast<int>(100.0 -
                               100.0 * static_cast<double>(al_edges.size()) /
                                   static_cast<double>(merged.size())));

  RunBenchmarks(argc, argv);
  return 0;
}
