// Substrate microbenchmarks: JSON parse/serialize throughput, MiniDFS
// write/read/replication, and the sliding-window rate limiter.

#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dfs/dfs.h"
#include "json/json.h"
#include "net/rate_limiter.h"

namespace cfnet::bench {
namespace {

std::string SampleDocument() {
  json::Json j = json::Json::MakeObject();
  j.Set("id", 744036);
  j.Set("name", "Planetary Resources");
  j.Set("angellist_url", "https://angel.co/company/744036");
  j.Set("fundraising", true);
  j.Set("follower_count", 24750);
  j.Set("twitter_url", "https://twitter.com/startup744036");
  json::Json founders = json::Json::MakeArray();
  for (int i = 0; i < 3; ++i) founders.Append(1000 + i);
  j.Set("founder_ids", std::move(founders));
  json::Json rounds = json::Json::MakeArray();
  for (int r = 0; r < 3; ++r) {
    json::Json round = json::Json::MakeObject();
    round.Set("round_index", r);
    round.Set("amount_usd", 1.5e6 * (r + 1));
    json::Json investors = json::Json::MakeArray();
    for (int i = 0; i < 5; ++i) investors.Append(2000 + r * 5 + i);
    round.Set("investor_ids", std::move(investors));
    rounds.Append(std::move(round));
  }
  j.Set("funding_rounds", std::move(rounds));
  return j.Dump();
}

void BM_JsonParse(benchmark::State& state) {
  std::string doc = SampleDocument();
  for (auto _ : state) {
    auto parsed = json::Parse(doc);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_JsonParse);

void BM_JsonDump(benchmark::State& state) {
  auto parsed = json::Parse(SampleDocument());
  int64_t bytes = 0;
  for (auto _ : state) {
    std::string out = parsed->Dump();
    benchmark::DoNotOptimize(out.data());
    bytes = static_cast<int64_t>(out.size());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_JsonDump);

void BM_DfsWrite(benchmark::State& state) {
  dfs::DfsConfig config;
  config.replication = static_cast<int>(state.range(0));
  dfs::MiniDfs fs(config);
  std::string data(1 << 20, 'x');
  int i = 0;
  for (auto _ : state) {
    fs.WriteFile("/bench/file-" + std::to_string(i++ % 64), data).ok();
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
  state.SetLabel("replication=" + std::to_string(config.replication));
}
BENCHMARK(BM_DfsWrite)->Arg(1)->Arg(3);

void BM_DfsRead(benchmark::State& state) {
  dfs::MiniDfs fs;
  std::string data(1 << 20, 'y');
  fs.WriteFile("/bench/read", data).ok();
  for (auto _ : state) {
    auto content = fs.ReadFile("/bench/read");
    benchmark::DoNotOptimize(content.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_DfsRead);

void BM_DfsReplicationMonitor(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    dfs::DfsConfig config;
    config.num_datanodes = 6;
    dfs::MiniDfs fs(config);
    for (int i = 0; i < 32; ++i) {
      fs.WriteFile("/f" + std::to_string(i), std::string(1 << 16, 'z')).ok();
    }
    fs.KillDataNode(0).ok();
    fs.KillDataNode(1).ok();
    state.ResumeTiming();
    benchmark::DoNotOptimize(fs.RunReplicationMonitor());
  }
}
BENCHMARK(BM_DfsReplicationMonitor)->Unit(benchmark::kMillisecond);

void BM_RateLimiterAdmit(benchmark::State& state) {
  net::SlidingWindowRateLimiter limiter(180, 15ll * 60 * 1000000);
  int64_t now = 0;
  for (auto _ : state) {
    now += 5000000;  // 5s apart: always admitted
    benchmark::DoNotOptimize(limiter.Admit("token", now).admitted);
  }
}
BENCHMARK(BM_RateLimiterAdmit);

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  cfnet::bench::RunBenchmarks(argc, argv);
  return 0;
}
