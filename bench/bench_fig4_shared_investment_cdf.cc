// Reproduces Figure 4: shared-investment-size CDFs of the strongest CoDA
// communities vs the sampled global estimate (with its DKW/Glivenko-
// Cantelli accuracy bound), plus the Figure 8 toy-example metric checks.
// Benchmarks CoDA fitting and pairwise-intersection throughput.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/community_metrics.h"
#include "stats/stats.h"
#include "util/string_util.h"

namespace cfnet::bench {
namespace {

Testbed* g_bed = nullptr;

void BM_CodaFit(benchmark::State& state) {
  const graph::BipartiteGraph& g = g_bed->suite->filtered_graph();
  community::CodaConfig config;
  config.num_communities = static_cast<int>(state.range(0));
  config.max_iterations = 10;
  for (auto _ : state) {
    community::CodaResult result = community::Coda(config).Fit(g);
    benchmark::DoNotOptimize(result.final_log_likelihood);
  }
  state.SetLabel(StrFormat("%zu investors, %zu edges", g.num_left(),
                           g.num_edges()));
}
BENCHMARK(BM_CodaFit)->Arg(16)->Arg(48)->Arg(96)->Unit(benchmark::kMillisecond);

void BM_GlobalSharedInvestmentSample(benchmark::State& state) {
  const graph::BipartiteGraph& g = g_bed->suite->investor_graph();
  size_t pairs = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto sample = core::GlobalSharedInvestmentSample(g, pairs, 3);
    benchmark::DoNotOptimize(sample.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pairs));
}
BENCHMARK(BM_GlobalSharedInvestmentSample)
    ->Arg(100000)
    ->Arg(800000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  using namespace cfnet;
  using namespace cfnet::bench;
  FlagParser flags(argc, argv);
  Testbed& bed = GetTestbed(flags);
  g_bed = &bed;

  Section("Figure 8 toy examples (metric validation)");
  {
    graph::BipartiteGraph strong = core::ToyCommunityExample1();
    graph::BipartiteGraph weak = core::ToyCommunityExample2();
    std::vector<uint32_t> all1 = {0, 1, 2};
    PrintComparison("toy 1 mean shared size", "1.67",
                    StrFormat("%.2f", core::MeanSharedInvestmentSize(strong, all1)));
    PrintComparison("toy 1 companies with >=2 shared investors", "100%",
                    StrFormat("%.0f%%",
                              core::SharedInvestorCompanyPercent(strong, all1, 2)));
    PrintComparison("toy 2 mean shared size", "0.33",
                    StrFormat("%.2f", core::MeanSharedInvestmentSize(weak, all1)));
    PrintComparison("toy 2 companies with >=2 shared investors", "25%",
                    StrFormat("%.0f%%",
                              core::SharedInvestorCompanyPercent(weak, all1, 2)));
  }

  size_t global_pairs = static_cast<size_t>(flags.GetInt("pairs", 800000));
  core::Fig4Result fig4 = bed.suite->RunFig4(3, global_pairs);

  Section("CoDA communities (paper: 96 communities, average size 190.2)");
  PrintComparison("communities detected", "96",
                  std::to_string(fig4.num_communities));
  PrintComparison("average community size",
                  StrFormat("%.1f (190.2 x scale)", 190.2 * bed.scale),
                  StrFormat("%.1f", fig4.avg_community_size));
  std::printf("  CoDA: %d iterations, final log-likelihood %.1f\n",
              fig4.coda_iterations, fig4.coda_log_likelihood);

  Section("Figure 4: shared-investment-size CDFs");
  PrintComparison("strongest community mean shared size", "2.1",
                  fig4.strongest.empty()
                      ? "n/a"
                      : StrFormat("%.2f", fig4.strongest[0].mean_shared));
  if (fig4.strongest.size() > 1) {
    PrintComparison("2nd strongest community mean shared size", "1.6",
                    StrFormat("%.2f", fig4.strongest[1].mean_shared));
  }
  PrintComparison("max pairwise shared investments", "48",
                  fig4.strongest.empty()
                      ? "n/a"
                      : StrFormat("%.0f", fig4.strongest[0].max_shared));
  PrintComparison("global estimate sample pairs", "800,000",
                  WithThousandsSeparators(static_cast<int64_t>(fig4.global_pairs)));
  PrintComparison("DKW bound at 99% confidence", "0.0196 (paper's figure)",
                  StrFormat("%.4f", fig4.dkw_epsilon));

  for (size_t s = 0; s < fig4.strongest.size(); ++s) {
    const auto& curve = fig4.strongest[s];
    std::printf("\n  CDF, strong community #%zu (%zu investors, mean %.2f):\n",
                curve.community_index, curve.size, curve.mean_shared);
    std::printf("    x:");
    for (const auto& p : curve.curve) std::printf(" %.0f", p.x);
    std::printf("\n    F:");
    for (const auto& p : curve.curve) std::printf(" %.3f", p.p);
    std::printf("\n");
  }
  std::printf("\n  CDF, global %zu-pair estimate:\n", fig4.global_pairs);
  std::printf("    x:");
  for (const auto& p : fig4.global_curve) std::printf(" %.0f", p.x);
  std::printf("\n    F:");
  for (const auto& p : fig4.global_curve) std::printf(" %.4f", p.p);
  std::printf("\n");

  RunBenchmarks(argc, argv);
  return 0;
}
