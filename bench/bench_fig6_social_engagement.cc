// Reproduces Figure 6 (the §4 summary table): companies per social-
// engagement category with their fundraising success rates, compared
// against the paper's reported values, plus timings of the underlying
// MiniSpark join/aggregation pipeline.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/engagement_analysis.h"
#include "util/string_util.h"
#include "util/table.h"

namespace cfnet::bench {
namespace {

struct PaperRow {
  const char* label;
  double pct_companies;  // % of all companies
  double pct_success;
};

// Figure 6 of the paper, normalized to percentages (counts are scale-bound).
constexpr PaperRow kPaperRows[] = {
    {"No social media presence", 89.81, 0.4},
    {"Facebook", 5.07, 12.2},
    {"Twitter", 9.48, 10.2},
    {"Facebook and Twitter", 4.37, 13.2},
    {"Presence of demo video", 4.88, 10.4},
    {"No demo video", 95.11, 0.9},
    {"Facebook (likes > median)", 2.08, 18.0},
    {"Twitter (tweets > median)", 4.36, 14.7},
    {"Twitter (followers > median)", 4.36, 15.2},
    {"Facebook (likes > median) and Twitter (followers > median)", 1.33, 22.2},
    {"Facebook (likes > median) and Twitter (tweets > median)", 1.30, 22.1},
};

Testbed* g_bed = nullptr;

void BM_AnalyzeEngagement(benchmark::State& state) {
  for (auto _ : state) {
    core::EngagementTable table =
        core::AnalyzeEngagement(g_bed->platform->context(), *g_bed->inputs);
    benchmark::DoNotOptimize(table.rows.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g_bed->inputs->startups.size()));
}
BENCHMARK(BM_AnalyzeEngagement)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  using namespace cfnet;
  using namespace cfnet::bench;
  FlagParser flags(argc, argv);
  Testbed& bed = GetTestbed(flags);
  g_bed = &bed;

  core::EngagementTable table = bed.suite->RunEngagementTable();

  Section("Figure 6: social engagement's impact on fundraising");
  std::printf("split points (medians over valid accounts): likes=%.0f "
              "(paper 652), tweets=%.0f (paper 343), followers=%.0f "
              "(paper 339)\n\n",
              table.fb_likes_median, table.tw_tweets_median,
              table.tw_followers_median);

  AsciiTable out({"Category", "Companies", "% of all", "paper %", "% success",
                  "paper %"});
  for (size_t i = 0; i < table.rows.size(); ++i) {
    const auto& row = table.rows[i];
    const auto& paper = kPaperRows[i];
    out.AddRow({row.label, WithThousandsSeparators(row.num_companies),
                StrFormat("%.2f%%", row.pct_of_companies),
                StrFormat("%.2f%%", paper.pct_companies),
                StrFormat("%.1f%%", row.success_pct),
                StrFormat("%.1f%%", paper.pct_success)});
  }
  std::printf("%s", out.Render().c_str());

  const auto* none = table.FindRow("No social media presence");
  const auto* fb = table.FindRow("Facebook");
  const auto* tw = table.FindRow("Twitter");
  if (none != nullptr && none->success_pct > 0) {
    PrintComparison("Facebook-presence success multiplier", "30x",
                    StrFormat("%.0fx", fb->success_pct / none->success_pct));
    PrintComparison("Twitter-presence success multiplier", "26x",
                    StrFormat("%.0fx", tw->success_pct / none->success_pct));
  }
  const auto* video = table.FindRow("Presence of demo video");
  const auto* no_video = table.FindRow("No demo video");
  if (no_video != nullptr && no_video->success_pct > 0) {
    PrintComparison(
        "Demo-video success multiplier", ">= 11.5x",
        StrFormat("%.1fx", video->success_pct / no_video->success_pct));
  }

  Section("statistical significance (extension; category vs complement)");
  AsciiTable sig({"Category", "odds ratio", "chi-square p-value"});
  for (const auto& row : table.rows) {
    sig.AddRow({row.label, StrFormat("%.1f", row.odds_ratio),
                row.chi_square_p_value < 1e-12
                    ? "< 1e-12"
                    : StrFormat("%.2g", row.chi_square_p_value)});
  }
  std::printf("%s", sig.Render().c_str());

  RunBenchmarks(argc, argv);
  return 0;
}
