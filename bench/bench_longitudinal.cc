// §7 longitudinal dynamics: runs the daily cohort tracker over an evolving
// world and reports the time-resolved signals a one-shot crawl cannot see
// (pre-close engagement growth of eventual winners vs losers, community
// drift), plus timings of the evolution step and the daily crawl.

#include <cstdio>
#include <map>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "community/coda.h"
#include "crawler/periodic.h"
#include "net/social_web.h"
#include "synth/world.h"
#include "util/string_util.h"
#include "util/table.h"

namespace cfnet::bench {
namespace {

void BM_EvolveOneDay(benchmark::State& state) {
  synth::WorldConfig config;
  config.scale = static_cast<double>(state.range(0)) / 1000.0;
  synth::World world = synth::World::Generate(config);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.EvolveOneDay(rng).campaigns_closed);
  }
  state.SetLabel(StrFormat("%zu companies", world.companies().size()));
}
BENCHMARK(BM_EvolveOneDay)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_DailyCohortCrawl(benchmark::State& state) {
  synth::WorldConfig config;
  config.scale = 0.02;
  synth::World world = synth::World::Generate(config);
  dfs::MiniDfs dfs;
  crawler::PeriodicCohortCrawler daily(&dfs);
  int day = 0;
  for (auto _ : state) {
    net::SocialWeb web(&world);
    auto report = daily.CrawlDay(&web, day++);
    benchmark::DoNotOptimize(report.ok());
  }
}
BENCHMARK(BM_DailyCohortCrawl)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  using namespace cfnet;
  using namespace cfnet::bench;
  FlagParser flags(argc, argv);
  const int days = static_cast<int>(flags.GetInt("days", 35));
  const double scale = flags.GetDouble("scale", 0.03);

  synth::WorldConfig config;
  config.scale = scale;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 20160626));
  // A larger raising cohort than the steady-state default, so the
  // winners-vs-losers growth comparison has a usable sample within the
  // bench's horizon.
  config.frac_currently_raising = 0.02;
  synth::World world = synth::World::Generate(config);
  dfs::MiniDfs dfs;
  crawler::PeriodicCohortCrawler daily(&dfs);
  Rng rng(config.seed ^ 0xfeedULL);

  Section(StrFormat("daily cohort tracking over %d days (scale %.2f)", days,
                    scale));

  struct Track {
    int64_t followers_first = -1;
    int64_t followers_last = -1;
    int days_observed = 0;
    bool closed = false;
    bool succeeded = false;
  };
  std::map<uint64_t, Track> tracks;
  int64_t total_closed = 0;
  int64_t total_succeeded = 0;

  for (int day = 0; day < days; ++day) {
    net::SocialWeb web(&world);
    auto report = daily.CrawlDay(&web, day);
    if (!report.ok()) {
      std::fprintf(stderr, "day %d failed: %s\n", day,
                   report.status().ToString().c_str());
      return 1;
    }
    auto records = daily.ReadDay(day);
    if (records.ok()) {
      for (const auto& r : *records) {
        uint64_t id = static_cast<uint64_t>(r.Get("id").AsInt());
        Track& t = tracks[id];
        if (r.Has("twitter_followers")) {
          int64_t f = r.Get("twitter_followers").AsInt();
          if (t.followers_first < 0) t.followers_first = f;
          t.followers_last = f;
        }
        ++t.days_observed;
      }
    }
    synth::World::DayReport evolve = world.EvolveOneDay(rng);
    total_closed += evolve.campaigns_closed;
    total_succeeded += evolve.campaigns_succeeded;
    for (const auto& c : world.companies()) {
      auto it = tracks.find(c.id);
      if (it != tracks.end() && !c.currently_raising && !it->second.closed) {
        it->second.closed = true;
        it->second.succeeded = c.raised_funding;
      }
    }
  }
  std::printf("  %zu companies tracked; %lld campaigns closed, %lld "
              "succeeded\n",
              tracks.size(), static_cast<long long>(total_closed),
              static_cast<long long>(total_succeeded));

  double growth_w = 0;
  double growth_l = 0;
  int n_w = 0;
  int n_l = 0;
  for (const auto& [id, t] : tracks) {
    if (!t.closed || t.followers_first <= 0 || t.days_observed < 2) continue;
    double growth = (static_cast<double>(t.followers_last) -
                     static_cast<double>(t.followers_first)) /
                    static_cast<double>(t.followers_first) /
                    static_cast<double>(t.days_observed);
    if (t.succeeded) {
      growth_w += growth;
      ++n_w;
    } else {
      growth_l += growth;
      ++n_l;
    }
  }
  PrintComparison("pre-close follower growth, winners",
                  "(higher than losers)",
                  n_w > 0 ? StrFormat("%+.2f%%/day (n=%d)",
                                      100 * growth_w / n_w, n_w)
                          : "n/a");
  PrintComparison("pre-close follower growth, losers", "-",
                  n_l > 0 ? StrFormat("%+.2f%%/day (n=%d)",
                                      100 * growth_l / n_l, n_l)
                          : "n/a");

  uint64_t snapshot_bytes = 0;
  for (const auto& f : dfs.List("/longitudinal/")) {
    auto size = dfs.FileSize(f);
    if (size.ok()) snapshot_bytes += *size;
  }
  std::printf("  %d dated snapshots, %s bytes in MiniDFS\n", days,
              WithThousandsSeparators(static_cast<int64_t>(snapshot_bytes)).c_str());

  RunBenchmarks(argc, argv);
  return 0;
}
