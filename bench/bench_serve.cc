// Serving-tier overload benchmark: a closed-loop client fleet (founders /
// investors / job seekers) measures sustainable capacity, then open-loop
// phases push the service to 4x that rate, run a slow-query (recommendation)
// storm, and hot-swap snapshots under load. Reported per phase: offered vs
// goodput, p50/p99 of served responses, shed/degraded/timeout counts, and
// the torn-response detector (must stay zero). Results go to --json=PATH
// (default BENCH_serve.json); --scale sizes the crawled world, --duration_ms
// the per-phase wall time, --clients and --workers the two fleets.
//
// The acceptance bar this records: at 4x sustainable offered load, goodput
// stays >= 80% of the closed-loop saturation rate, and every served
// response completed within its deadline (late completions are counted as
// timeouts, never as served).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/investor_graph.h"
#include "serve/epoch_store.h"
#include "serve/load_gen.h"
#include "serve/service.h"
#include "serve/serving_snapshot.h"
#include "util/flags.h"
#include "util/logging.h"

namespace cfnet::bench {
namespace {

using serve::ClosedLoopConfig;
using serve::EpochStore;
using serve::LoadResult;
using serve::OpenLoopConfig;
using serve::PersonaMix;
using serve::QueryService;
using serve::QueryServiceConfig;
using serve::ServingSnapshot;
using serve::WorkloadGenerator;

serve::SnapshotBuildOptions NameResolvers(const synth::World& world) {
  serve::SnapshotBuildOptions build;
  build.investor_name = [&world](uint64_t id) {
    const synth::UserTruth* u = world.FindUser(id);
    return u != nullptr ? u->name : "investor-" + std::to_string(id);
  };
  build.company_name = [&world](uint64_t id) {
    const synth::CompanyTruth* c = world.FindCompany(id);
    return c != nullptr ? c->name : "company-" + std::to_string(id);
  };
  return build;
}

void PrintPhase(const std::string& name, const LoadResult& r) {
  std::printf(
      "%-16s offered %8.0f rps  goodput %8.0f rps  p50 %5lld us  p99 %6lld us"
      "  shed %lld+%lld  degraded %lld  timeouts %lld  torn %lld\n",
      name.c_str(), r.offered_rps, r.goodput_rps,
      static_cast<long long>(r.latency_p50_micros),
      static_cast<long long>(r.latency_p99_micros),
      static_cast<long long>(r.shed_queue_full),
      static_cast<long long>(r.shed_deadline),
      static_cast<long long>(r.degraded), static_cast<long long>(r.timeouts),
      static_cast<long long>(r.torn_responses));
}

json::Json PhaseDoc(const std::string& name, const LoadResult& r,
                    QueryService& service) {
  json::Json p = r.ToJson();
  p.Set("phase", name);
  // Per-class shed/degraded/served accounting rides along with each phase
  // (each phase runs its own QueryService, so the counters are per-phase).
  p.Set("service", service.StatsJson());
  return p;
}

void RunServeBench(const cfnet::FlagParser& flags) {
  const std::string path = flags.GetString("json", "BENCH_serve.json");
  const int64_t duration_micros = flags.GetInt("duration_ms", 1500) * 1000;
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const int workers = static_cast<int>(flags.GetInt("workers", 2));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 20160626));

  Testbed& bed = GetTestbed(flags);
  graph::BipartiteGraph g =
      core::BuildInvestorGraph(bed.platform->context(), *bed.inputs);
  CFNET_CHECK(g.num_left() > 0);

  Section("serving snapshot");
  const auto build_start = std::chrono::steady_clock::now();
  EpochStore<ServingSnapshot> store;
  serve::SnapshotBuildOptions build = NameResolvers(bed.platform->world());
  store.Publish(serve::BuildServingSnapshot(1, g, build));
  const double build_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - build_start)
                              .count();
  auto pin = store.Acquire();
  std::printf("built epoch 1 in %.0f ms: %zu investors, %zu companies, "
              "%zu projection edges\n",
              build_ms, pin->graph.num_left(), pin->graph.num_right(),
              pin->projection.num_edges());
  WorkloadGenerator gen(*pin, PersonaMix{});
  pin = EpochStore<ServingSnapshot>::Pin{};

  QueryServiceConfig base_config;
  base_config.worker_threads = workers;
  auto make_service = [&] {
    return std::make_unique<QueryService>(&store, base_config);
  };

  json::Json doc = json::Json::MakeObject();
  doc.Set("bench", "bench_serve");
  doc.Set("scale", bed.scale);
  doc.Set("clients", static_cast<int64_t>(clients));
  doc.Set("workers", static_cast<int64_t>(workers));
  doc.Set("duration_micros", duration_micros);
  doc.Set("snapshot_build_ms", build_ms);
  json::Json phases = json::Json::MakeArray();

  // Phase 1 — sustainable capacity: closed loop, mixed personas. The
  // goodput here is the saturation baseline the overload phases compare to.
  Section("load phases");
  ClosedLoopConfig closed;
  closed.clients = clients;
  closed.duration_micros = duration_micros;
  closed.seed = seed;
  double saturation_rps = 0;
  {
    auto service = make_service();
    LoadResult r = RunClosedLoop(*service, gen, closed);
    service->Shutdown();
    saturation_rps = r.goodput_rps;
    PrintPhase("saturation", r);
    phases.Append(PhaseDoc("saturation", r, *service));
  }

  // Phase 2 — overload burst: open loop at 4x the sustainable rate. The
  // admission queues and deadline shedding must keep goodput near
  // saturation instead of collapsing under the backlog.
  LoadResult overload;
  {
    auto service = make_service();
    OpenLoopConfig open;
    open.offered_rps = 4.0 * saturation_rps;
    open.duration_micros = duration_micros;
    open.seed = seed + 1;
    overload = RunOpenLoop(*service, gen, open);
    service->Shutdown();
    PrintPhase("overload_4x", overload);
    phases.Append(PhaseDoc("overload_4x", overload, *service));
  }

  // Phase 3 — slow-query storm: founders only (recommendation-heavy, the
  // expensive class) at 2x saturation. The recommend breaker degrades the
  // class instead of letting it starve everything else.
  {
    auto service = make_service();
    OpenLoopConfig storm;
    storm.offered_rps = 2.0 * saturation_rps;
    storm.duration_micros = duration_micros;
    storm.mix = PersonaMix{1.0, 0.0, 0.0};
    storm.seed = seed + 2;
    LoadResult r = RunOpenLoop(*service, gen, storm);
    service->Shutdown();
    PrintPhase("slow_storm", r);
    phases.Append(PhaseDoc("slow_storm", r, *service));
  }

  // Phase 4 — snapshot swap under load: closed loop while a publisher
  // hot-swaps fresh epochs every ~100 ms. Zero torn responses required.
  LoadResult swap;
  {
    auto service = make_service();
    std::atomic<bool> stop{false};
    std::thread publisher([&] {
      uint64_t epoch = 2;
      while (!stop.load()) {
        store.Publish(serve::BuildServingSnapshot(epoch++, g, build));
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
    swap = RunClosedLoop(*service, gen, closed);
    stop.store(true);
    publisher.join();
    service->Shutdown();
    store.Sweep();
    PrintPhase("swap_under_load", swap);
    phases.Append(PhaseDoc("swap_under_load", swap, *service));
  }
  doc.Set("phases", std::move(phases));

  Section("acceptance");
  const double goodput_ratio =
      saturation_rps > 0 ? overload.goodput_rps / saturation_rps : 0;
  const bool goodput_ok = goodput_ratio >= 0.8;
  const bool torn_ok = overload.torn_responses == 0 && swap.torn_responses == 0;
  std::printf("goodput at 4x offered: %.0f%% of saturation (target >= 80%%)%s\n",
              goodput_ratio * 100, goodput_ok ? "" : "  ** MISS **");
  std::printf("torn responses under swap: %lld (must be 0)%s\n",
              static_cast<long long>(overload.torn_responses +
                                     swap.torn_responses),
              torn_ok ? "" : "  ** MISS **");
  std::printf("epochs served during swap phase: %lld\n",
              static_cast<long long>(swap.epochs_seen));
  doc.Set("goodput_ratio_at_4x", goodput_ratio);
  doc.Set("goodput_target_met", goodput_ok);
  doc.Set("torn_responses", overload.torn_responses + swap.torn_responses);

  WriteJsonDoc(path, doc);
}

}  // namespace
}  // namespace cfnet::bench

int main(int argc, char** argv) {
  cfnet::FlagParser flags(argc, argv);
  cfnet::bench::RunServeBench(flags);
  return 0;
}
